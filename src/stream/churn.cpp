#include "stream/churn.hpp"

#include <charconv>
#include <sstream>

#include "netbase/ip.hpp"

namespace asrel::stream {

namespace {

using topo::EdgeId;
using topo::ExportScope;
using topo::RelType;

/// splitmix64-style mixer, the repo's standard deterministic-choice hash.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t salt) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ull + b + salt;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// The synthetic /24 a prefix event talks about: a deterministic function
/// of the host id, inside 10.0.0.0/8 so it never collides with the
/// generator's delegated blocks.
net::Prefix4 prefix_of(std::uint32_t host) {
  return net::Prefix4{net::Ipv4Addr{(10u << 24) | (host << 8)}, 24};
}

}  // namespace

std::string_view to_string(ChurnKind kind) {
  switch (kind) {
    case ChurnKind::kLinkAdd:
      return "add";
    case ChurnKind::kLinkRemove:
      return "remove";
    case ChurnKind::kRelFlip:
      return "flip";
    case ChurnKind::kScopeFlip:
      return "scope";
    case ChurnKind::kPrefixAnnounce:
      return "announce";
    case ChurnKind::kPrefixWithdraw:
      return "withdraw";
  }
  return "?";
}

ApplyResult apply_churn_event(topo::World& world, const ChurnEvent& event) {
  ApplyResult result;
  auto& graph = world.graph;

  switch (event.kind) {
    case ChurnKind::kLinkAdd: {
      // Both ASes must already exist: the node universe is fixed for a
      // session (per-node propagator state is sized once).
      if (!graph.node_of(event.a) || !graph.node_of(event.b)) return result;
      const auto id = graph.add_edge(event.a, event.b, event.rel);
      if (!id) return result;  // live duplicate or self-loop
      result.applied = true;
      result.touched.push_back(*id);
      return result;
    }
    case ChurnKind::kLinkRemove: {
      const auto id = graph.find_edge(event.a, event.b);
      if (!id || !graph.remove_edge(*id)) return result;
      result.applied = true;
      result.touched.push_back(*id);
      return result;
    }
    case ChurnKind::kRelFlip: {
      const auto id = graph.find_edge(event.a, event.b);
      if (!id) return result;
      const auto& edge = graph.edge(*id);
      const auto provider = graph.node_of(event.a);
      if (!provider) return result;
      // Flipping to the identical state (same rel; same provider for P2C;
      // no annotations to reset) is a no-op.
      if (edge.rel == event.rel && !edge.hybrid_rel &&
          edge.scope == ExportScope::kFull && !edge.scope_via_community &&
          (event.rel != RelType::kP2C || edge.u == *provider)) {
        return result;
      }
      if (!graph.set_edge_rel(*id, event.rel, *provider)) return result;
      result.applied = true;
      result.touched.push_back(*id);
      return result;
    }
    case ChurnKind::kScopeFlip: {
      const auto id = graph.find_edge(event.a, event.b);
      if (!id) return result;
      const auto& edge = graph.edge(*id);
      if (edge.rel == RelType::kP2C && edge.scope == event.scope &&
          edge.scope_via_community == event.via_community) {
        return result;  // already in the requested state
      }
      if (!graph.set_edge_scope(*id, event.scope, event.via_community)) {
        return result;
      }
      result.applied = true;
      result.touched.push_back(*id);
      return result;
    }
    case ChurnKind::kPrefixAnnounce: {
      if (!graph.node_of(event.a)) return result;
      auto& list = world.prefixes[event.a];
      const auto prefix = prefix_of(event.prefix_host);
      for (const auto& existing : list) {
        if (existing == prefix) return result;  // already announced
      }
      list.push_back(prefix);
      result.applied = true;  // touched stays empty: below link granularity
      return result;
    }
    case ChurnKind::kPrefixWithdraw: {
      const auto it = world.prefixes.find(event.a);
      if (it == world.prefixes.end()) return result;
      const auto prefix = prefix_of(event.prefix_host);
      for (auto entry = it->second.begin(); entry != it->second.end();
           ++entry) {
        if (*entry == prefix) {
          it->second.erase(entry);
          result.applied = true;
          return result;
        }
      }
      return result;
    }
  }
  return result;
}

std::vector<ChurnEvent> generate_churn(const topo::World& world,
                                       std::uint64_t seed,
                                       std::size_t count) {
  // Events are validated against a scratch copy so a generated feed stays
  // coherent (removes target live links, flips change something), while
  // still containing the deliberate no-ops the metamorphic suite needs.
  topo::World scratch = world;
  auto& graph = scratch.graph;
  const auto nodes = graph.nodes();

  std::vector<ChurnEvent> events;
  events.reserve(count);
  std::vector<std::pair<asn::Asn, asn::Asn>> removed_pairs;

  const auto roll = [&](std::uint64_t index, std::uint64_t tag) {
    return mix(seed, (index << 8) | tag, 0x57AE11ull);
  };
  const auto random_live_edge =
      [&](std::uint64_t index) -> std::optional<EdgeId> {
    if (graph.live_edge_count() == 0) return std::nullopt;
    for (unsigned attempt = 0; attempt < 64; ++attempt) {
      const auto id = static_cast<EdgeId>(roll(index, 0x10 + attempt) %
                                          graph.edge_count());
      if (!graph.edge(id).removed) return id;
    }
    return std::nullopt;
  };

  for (std::size_t i = 0; events.size() < count; ++i) {
    ChurnEvent event;
    const std::uint64_t pick = roll(i, 1) % 100;
    if (pick < 22) {
      // Remove a live link; ~1 in 4 of these removes the most recently
      // added link, producing the add-then-remove pairs the suite wants.
      if (!events.empty() && events.back().kind == ChurnKind::kLinkAdd &&
          roll(i, 2) % 4 == 0) {
        event.kind = ChurnKind::kLinkRemove;
        event.a = events.back().a;
        event.b = events.back().b;
      } else {
        const auto id = random_live_edge(i);
        if (!id) continue;
        const auto& edge = graph.edge(*id);
        event.kind = ChurnKind::kLinkRemove;
        event.a = graph.asn_of(edge.u);
        event.b = graph.asn_of(edge.v);
      }
    } else if (pick < 44) {
      // Add a link: half the time resurrect a removed pair, otherwise a
      // fresh pair of existing ASes.
      event.kind = ChurnKind::kLinkAdd;
      if (!removed_pairs.empty() && roll(i, 3) % 2 == 0) {
        const auto& pair =
            removed_pairs[roll(i, 4) % removed_pairs.size()];
        event.a = pair.first;
        event.b = pair.second;
      } else {
        event.a = graph.asn_of(
            static_cast<topo::NodeId>(roll(i, 5) % nodes.size()));
        event.b = graph.asn_of(
            static_cast<topo::NodeId>(roll(i, 6) % nodes.size()));
        if (event.a == event.b) continue;
      }
      const std::uint64_t rel_pick = roll(i, 7) % 10;
      event.rel = rel_pick < 6   ? RelType::kP2C
                  : rel_pick < 9 ? RelType::kP2P
                                 : RelType::kS2S;
    } else if (pick < 58) {
      const auto id = random_live_edge(i);
      if (!id) continue;
      const auto& edge = graph.edge(*id);
      event.kind = ChurnKind::kRelFlip;
      // Orient provider-first; for P2P->P2C flips this promotes a random
      // side to provider.
      const bool swap_sides = roll(i, 8) % 2 == 0;
      event.a = graph.asn_of(swap_sides ? edge.v : edge.u);
      event.b = graph.asn_of(swap_sides ? edge.u : edge.v);
      event.rel =
          edge.rel == RelType::kP2C ? RelType::kP2P : RelType::kP2C;
    } else if (pick < 68) {
      const auto id = random_live_edge(i);
      if (!id) continue;
      const auto& edge = graph.edge(*id);
      if (edge.rel != RelType::kP2C) continue;
      event.kind = ChurnKind::kScopeFlip;
      event.a = graph.asn_of(edge.u);
      event.b = graph.asn_of(edge.v);
      const std::uint64_t scope_pick = roll(i, 9) % 3;
      event.scope = scope_pick == 0   ? ExportScope::kFull
                    : scope_pick == 1 ? ExportScope::kNoProviders
                                      : ExportScope::kCustomersOnly;
      event.via_community = roll(i, 10) % 2 == 0;
    } else if (pick < 74) {
      // Deliberate no-op: remove a pair that (almost surely) has no link.
      event.kind = ChurnKind::kLinkRemove;
      event.a = graph.asn_of(
          static_cast<topo::NodeId>(roll(i, 11) % nodes.size()));
      event.b = graph.asn_of(
          static_cast<topo::NodeId>(roll(i, 12) % nodes.size()));
      if (event.a == event.b) continue;
    } else {
      event.kind = roll(i, 13) % 2 == 0 ? ChurnKind::kPrefixAnnounce
                                        : ChurnKind::kPrefixWithdraw;
      event.a = graph.asn_of(
          static_cast<topo::NodeId>(roll(i, 14) % nodes.size()));
      event.prefix_host = static_cast<std::uint32_t>(roll(i, 15) % 4096);
    }

    const ApplyResult applied = apply_churn_event(scratch, event);
    if (event.kind == ChurnKind::kLinkRemove && applied.applied) {
      removed_pairs.emplace_back(event.a, event.b);
    }
    // Keep the event whether or not it applied: no-ops are part of the
    // contract. But only count structural events toward the total often
    // enough to guarantee progress.
    events.push_back(event);
  }
  return events;
}

std::string to_churn_text(std::span<const ChurnEvent> events) {
  std::ostringstream out;
  out << "# asrel churn feed (" << events.size() << " events)\n";
  for (const auto& event : events) {
    out << to_string(event.kind);
    switch (event.kind) {
      case ChurnKind::kLinkAdd:
      case ChurnKind::kRelFlip:
        out << ' ' << event.a.value() << ' ' << event.b.value() << ' '
            << topo::to_string(event.rel);
        break;
      case ChurnKind::kLinkRemove:
        out << ' ' << event.a.value() << ' ' << event.b.value();
        break;
      case ChurnKind::kScopeFlip:
        out << ' ' << event.a.value() << ' ' << event.b.value() << ' '
            << topo::to_string(event.scope) << ' '
            << (event.via_community ? "community" : "silent");
        break;
      case ChurnKind::kPrefixAnnounce:
      case ChurnKind::kPrefixWithdraw:
        out << ' ' << event.a.value() << ' ' << event.prefix_host;
        break;
    }
    out << '\n';
  }
  return out.str();
}

namespace {

bool is_separator(char c) { return c == ' ' || c == '\t'; }

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && is_separator(line[pos])) ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && !is_separator(line[pos])) ++pos;
    if (pos > start) fields.push_back(line.substr(start, pos - start));
  }
  return fields;
}

/// The offending line as shown in diagnostics: trimmed and bounded so a
/// malformed multi-megabyte line cannot balloon the error string.
std::string quoted_line(std::string_view line) {
  while (!line.empty() && is_separator(line.front())) line.remove_prefix(1);
  while (!line.empty() && is_separator(line.back())) line.remove_suffix(1);
  constexpr std::size_t kMax = 80;
  if (line.size() <= kMax) return std::string{line};
  return std::string{line.substr(0, kMax)} + "...";
}

bool parse_u32(std::string_view text, std::uint32_t* out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_rel(std::string_view text, RelType* out) {
  if (text == "p2c") *out = RelType::kP2C;
  else if (text == "p2p") *out = RelType::kP2P;
  else if (text == "s2s") *out = RelType::kS2S;
  else return false;
  return true;
}

}  // namespace

std::vector<ChurnEvent> parse_churn_text(std::string_view text,
                                         std::string* error) {
  std::vector<ChurnEvent> events;
  std::size_t line_number = 0;
  std::string_view current_line;
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_number) + ": " + message +
               " in '" + quoted_line(current_line) + "'";
    }
    return std::vector<ChurnEvent>{};
  };
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, end == std::string_view::npos ? text.size() - pos : end - pos);
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_number;
    // Tolerate CRLF feeds: a trailing '\r' is line framing, not content.
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    current_line = line;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const auto fields = split_fields(line);
    if (fields.empty()) continue;

    ChurnEvent event;
    std::uint32_t a = 0, b = 0;
    const std::string_view verb = fields[0];
    if (verb == "add" || verb == "flip") {
      if (fields.size() != 4 || !parse_u32(fields[1], &a) ||
          !parse_u32(fields[2], &b) || !parse_rel(fields[3], &event.rel)) {
        return fail("expected '" + std::string{verb} + " <a> <b> <rel>'");
      }
      event.kind = verb == "add" ? ChurnKind::kLinkAdd : ChurnKind::kRelFlip;
      event.a = asn::Asn{a};
      event.b = asn::Asn{b};
    } else if (verb == "remove") {
      if (fields.size() != 3 || !parse_u32(fields[1], &a) ||
          !parse_u32(fields[2], &b)) {
        return fail("expected 'remove <a> <b>'");
      }
      event.kind = ChurnKind::kLinkRemove;
      event.a = asn::Asn{a};
      event.b = asn::Asn{b};
    } else if (verb == "scope") {
      if (fields.size() != 5 || !parse_u32(fields[1], &a) ||
          !parse_u32(fields[2], &b)) {
        return fail("expected 'scope <a> <b> <scope> community|silent'");
      }
      if (fields[3] == "full") event.scope = ExportScope::kFull;
      else if (fields[3] == "no-providers")
        event.scope = ExportScope::kNoProviders;
      else if (fields[3] == "customers-only")
        event.scope = ExportScope::kCustomersOnly;
      else return fail("unknown scope '" + std::string{fields[3]} + "'");
      if (fields[4] == "community") event.via_community = true;
      else if (fields[4] == "silent") event.via_community = false;
      else return fail("expected 'community' or 'silent'");
      event.kind = ChurnKind::kScopeFlip;
      event.a = asn::Asn{a};
      event.b = asn::Asn{b};
    } else if (verb == "announce" || verb == "withdraw") {
      if (fields.size() != 3 || !parse_u32(fields[1], &a) ||
          !parse_u32(fields[2], &event.prefix_host)) {
        return fail("expected '" + std::string{verb} + " <asn> <net>'");
      }
      event.kind = verb == "announce" ? ChurnKind::kPrefixAnnounce
                                      : ChurnKind::kPrefixWithdraw;
      event.a = asn::Asn{a};
    } else {
      return fail("unknown event verb '" + std::string{verb} + "'");
    }
    events.push_back(event);
  }
  if (error != nullptr) error->clear();
  return events;
}

}  // namespace asrel::stream
