#include "stream/ingest.hpp"

#include "obs/metrics.hpp"

namespace asrel::stream {

namespace {

struct QueueMetrics {
  obs::Gauge& depth;
  obs::Gauge& cap;
  obs::Counter& shed;
  obs::Counter& coalesced;

  static QueueMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static QueueMetrics metrics{
        reg.gauge("asrel_stream_queue_depth",
                  "Churn events waiting in the ingest queue"),
        reg.gauge("asrel_stream_queue_cap",
                  "Configured ingest queue capacity"),
        reg.counter("asrel_stream_queue_shed_total",
                    "Churn events dropped at queue saturation"),
        reg.counter("asrel_stream_queue_coalesced_total",
                    "Churn events that replaced a queued same-key event"),
    };
    return metrics;
  }
};

}  // namespace

std::string_view to_string(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kBlock:
      return "block";
    case QueuePolicy::kShed:
      return "shed";
    case QueuePolicy::kCoalesce:
      return "coalesce";
  }
  return "?";
}

std::optional<QueuePolicy> parse_queue_policy(std::string_view text) {
  if (text == "block") return QueuePolicy::kBlock;
  if (text == "shed") return QueuePolicy::kShed;
  if (text == "coalesce") return QueuePolicy::kCoalesce;
  return std::nullopt;
}

EventQueue::EventQueue(std::size_t cap, QueuePolicy policy)
    : cap_(std::max<std::size_t>(1, cap)), policy_(policy) {
  QueueMetrics::get().cap.set(static_cast<std::int64_t>(cap_));
}

bool EventQueue::same_key(const ChurnEvent& a, const ChurnEvent& b) {
  const auto is_link = [](const ChurnEvent& e) {
    return e.kind == ChurnKind::kLinkAdd || e.kind == ChurnKind::kLinkRemove ||
           e.kind == ChurnKind::kRelFlip || e.kind == ChurnKind::kScopeFlip;
  };
  if (is_link(a) != is_link(b)) return false;
  if (is_link(a)) {
    const auto lo_a = std::min(a.a, a.b), hi_a = std::max(a.a, a.b);
    const auto lo_b = std::min(b.a, b.b), hi_b = std::max(b.a, b.b);
    return lo_a == lo_b && hi_a == hi_b;
  }
  return a.a == b.a && a.prefix_host == b.prefix_host;
}

bool EventQueue::push(const QueuedEvent& item) {
  std::unique_lock lock{mutex_};
  auto& metrics = QueueMetrics::get();
  if (policy_ == QueuePolicy::kBlock) {
    if (items_.size() >= cap_ && !closed_) ++stats_.blocked;
    space_.wait(lock,
                [&] { return items_.size() < cap_ || closed_; });
  }
  if (closed_) {
    ++stats_.shed;
    metrics.shed.inc();
    return false;
  }
  if (items_.size() >= cap_) {
    if (policy_ == QueuePolicy::kCoalesce) {
      // Newest intent wins: overwrite the queued event for the same key
      // in place (latest occurrence, so relative order of distinct keys
      // is preserved).
      for (auto it = items_.rbegin(); it != items_.rend(); ++it) {
        if (same_key(it->event, item.event)) {
          *it = item;
          ++stats_.coalesced;
          metrics.coalesced.inc();
          return true;
        }
      }
    }
    ++stats_.shed;
    metrics.shed.inc();
    return false;
  }
  items_.push_back(item);
  ++stats_.pushed;
  metrics.depth.set(static_cast<std::int64_t>(items_.size()));
  ready_.notify_one();
  return true;
}

std::optional<QueuedEvent> EventQueue::pop() {
  std::unique_lock lock{mutex_};
  ready_.wait(lock, [&] { return !items_.empty() || closed_; });
  if (items_.empty()) return std::nullopt;  // closed and drained
  QueuedEvent item = items_.front();
  items_.pop_front();
  ++stats_.popped;
  QueueMetrics::get().depth.set(static_cast<std::int64_t>(items_.size()));
  space_.notify_one();
  return item;
}

void EventQueue::close() {
  {
    std::lock_guard lock{mutex_};
    closed_ = true;
  }
  space_.notify_all();
  ready_.notify_all();
}

std::size_t EventQueue::depth() const {
  std::lock_guard lock{mutex_};
  return items_.size();
}

EventQueue::Stats EventQueue::stats() const {
  std::lock_guard lock{mutex_};
  return stats_;
}

}  // namespace asrel::stream
