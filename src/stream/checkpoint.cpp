#include "stream/checkpoint.hpp"

#include <algorithm>
#include <filesystem>
#include <unordered_set>

#include "io/atomic_file.hpp"
#include "io/wire.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/fault_inject.hpp"

namespace asrel::stream {

namespace {

using io::wire::Cursor;
using io::wire::fnv1a64;
using io::wire::put_u32;
using io::wire::put_u64;
using io::wire::put_u8;

constexpr std::uint8_t kEdgeViaCommunity = 1u << 0;
constexpr std::uint8_t kEdgeMisdocumented = 1u << 1;
constexpr std::uint8_t kEdgeHybrid = 1u << 2;
constexpr std::uint8_t kEdgeRemoved = 1u << 3;
constexpr std::uint8_t kEdgeFlagMask =
    kEdgeViaCommunity | kEdgeMisdocumented | kEdgeHybrid | kEdgeRemoved;

constexpr std::uint8_t kDirtyGraph = 1u << 0;
constexpr std::uint8_t kDirtyPaths = 1u << 1;
constexpr std::uint8_t kDirtyMask = kDirtyGraph | kDirtyPaths;

constexpr std::uint32_t kInvalidVia = ~std::uint32_t{0};

[[nodiscard]] bool valid_rel(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(topo::RelType::kS2S);
}

[[nodiscard]] bool valid_scope(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(topo::ExportScope::kCustomersOnly);
}

[[nodiscard]] std::uint32_t prefix_mask(unsigned length) {
  return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
}

void put_payload(std::string& out, const StreamCheckpoint& checkpoint) {
  const auto& fp = checkpoint.fingerprint;
  put_u64(out, static_cast<std::uint64_t>(fp.as_count));
  put_u64(out, fp.topo_seed);
  put_u64(out, fp.scheme_seed);
  put_u64(out, fp.vantage_seed);
  put_u32(out, fp.vantage_targets);
  put_u64(out, fp.node_count);
  put_u64(out, fp.node_hash);

  put_u64(out, checkpoint.epoch);
  put_u64(out, checkpoint.built_unix_ms);
  put_u64(out, checkpoint.feed_position);
  put_u8(out, static_cast<std::uint8_t>(
                  (checkpoint.graph_dirty ? kDirtyGraph : 0) |
                  (checkpoint.paths_dirty ? kDirtyPaths : 0)));

  put_u64(out, checkpoint.edges.size());
  for (const auto& edge : checkpoint.edges) {
    put_u32(out, edge.u);
    put_u32(out, edge.v);
    put_u8(out, static_cast<std::uint8_t>(edge.rel));
    put_u8(out, static_cast<std::uint8_t>(edge.scope));
    put_u8(out, static_cast<std::uint8_t>(
                    (edge.scope_via_community ? kEdgeViaCommunity : 0) |
                    (edge.misdocumented ? kEdgeMisdocumented : 0) |
                    (edge.hybrid_rel ? kEdgeHybrid : 0) |
                    (edge.removed ? kEdgeRemoved : 0)));
    put_u8(out, edge.hybrid_rel
                    ? static_cast<std::uint8_t>(*edge.hybrid_rel)
                    : 0);
  }

  put_u64(out, checkpoint.ribs.size());
  for (const auto& rib : checkpoint.ribs) {
    for (std::size_t node = 0; node < rib.parent.size(); ++node) {
      put_u32(out, rib.parent[node]);
      put_u32(out, rib.via_edge[node]);
      put_u8(out, rib.pref[node]);
      put_u32(out, rib.dist[node]);
    }
  }

  put_u64(out, checkpoint.prefixes.size());
  for (const auto& [asn, list] : checkpoint.prefixes) {
    put_u32(out, asn.value());
    put_u64(out, list.size());
    for (const auto& prefix : list) {
      put_u32(out, prefix.network().bits());
      put_u8(out, static_cast<std::uint8_t>(prefix.length()));
    }
  }

  put_u64(out, checkpoint.transit_asns.size());
  for (const auto asn : checkpoint.transit_asns) {
    put_u32(out, asn.value());
  }
}

void get_edges(Cursor& in, StreamCheckpoint& checkpoint) {
  const std::uint64_t count = in.get_count("edge table", 12);
  checkpoint.edges.reserve(count);
  std::unordered_set<std::uint64_t> live_pairs;
  for (std::uint64_t i = 0; i < count && !in.failed(); ++i) {
    topo::Edge edge;
    edge.u = in.get_u32("edge endpoint");
    edge.v = in.get_u32("edge endpoint");
    const std::uint8_t rel = in.get_u8("edge rel");
    const std::uint8_t scope = in.get_u8("edge scope");
    const std::uint8_t flags = in.get_u8("edge flags");
    const std::uint8_t hybrid = in.get_u8("edge hybrid rel");
    if (in.failed()) return;
    if (edge.u >= checkpoint.fingerprint.node_count ||
        edge.v >= checkpoint.fingerprint.node_count || edge.u == edge.v) {
      in.fail("edge endpoints out of range");
      return;
    }
    if (!valid_rel(rel) || !valid_scope(scope) ||
        (flags & ~kEdgeFlagMask) != 0) {
      in.fail("invalid edge encoding");
      return;
    }
    edge.rel = static_cast<topo::RelType>(rel);
    edge.scope = static_cast<topo::ExportScope>(scope);
    edge.scope_via_community = (flags & kEdgeViaCommunity) != 0;
    edge.misdocumented = (flags & kEdgeMisdocumented) != 0;
    edge.removed = (flags & kEdgeRemoved) != 0;
    if ((flags & kEdgeHybrid) != 0) {
      if (!valid_rel(hybrid)) {
        in.fail("invalid hybrid relationship");
        return;
      }
      edge.hybrid_rel = static_cast<topo::RelType>(hybrid);
    } else if (hybrid != 0) {
      in.fail("nonzero hybrid byte on a non-hybrid edge");
      return;
    }
    if (!edge.removed) {
      const auto lo = std::min(edge.u, edge.v);
      const auto hi = std::max(edge.u, edge.v);
      if (!live_pairs.insert((std::uint64_t{lo} << 32) | hi).second) {
        in.fail("duplicate live edge between one AS pair");
        return;
      }
    }
    checkpoint.edges.push_back(edge);
  }
}

void get_ribs(Cursor& in, StreamCheckpoint& checkpoint) {
  const std::uint64_t node_count = checkpoint.fingerprint.node_count;
  const std::uint64_t count = in.get_count("rib table", 1);
  if (in.failed()) return;
  if (count != node_count) {
    in.fail("rib count does not match the node count");
    return;
  }
  // 13 bytes per (origin, node) cell; reject impossible sizes before
  // allocating node_count^2 cells.
  if (node_count != 0 && count > in.remaining() / (node_count * 13)) {
    in.fail("implausible element count for rib table");
    return;
  }
  checkpoint.ribs.resize(count);
  for (std::uint64_t origin = 0; origin < count && !in.failed(); ++origin) {
    auto& rib = checkpoint.ribs[origin];
    rib.origin = static_cast<topo::NodeId>(origin);
    rib.parent.resize(node_count);
    rib.via_edge.resize(node_count);
    rib.pref.resize(node_count);
    rib.dist.resize(node_count);
    for (std::uint64_t node = 0; node < node_count && !in.failed(); ++node) {
      const std::uint32_t parent = in.get_u32("rib parent");
      const std::uint32_t via = in.get_u32("rib via edge");
      const std::uint8_t pref = in.get_u8("rib pref");
      const std::uint32_t dist = in.get_u32("rib dist");
      if (in.failed()) return;
      if (parent != topo::kInvalidNode && parent >= node_count) {
        in.fail("rib parent out of range");
        return;
      }
      if (via != kInvalidVia && via >= checkpoint.edges.size()) {
        in.fail("rib via edge out of range");
        return;
      }
      if ((parent == topo::kInvalidNode) != (via == kInvalidVia)) {
        in.fail("rib parent/via validity mismatch");
        return;
      }
      if (pref > 3 || dist > bgp::kMaxDist) {
        in.fail("rib pref or dist out of range");
        return;
      }
      rib.parent[node] = parent;
      rib.via_edge[node] = via;
      rib.pref[node] = pref;
      rib.dist[node] = static_cast<std::uint16_t>(dist);
    }
  }
}

void get_prefixes(Cursor& in, StreamCheckpoint& checkpoint) {
  // 17 = owner u32 + list count u64 + at least one 5-byte prefix.
  const std::uint64_t count = in.get_count("prefix table", 17);
  checkpoint.prefixes.reserve(count);
  std::uint64_t previous = 0;
  bool first = true;
  for (std::uint64_t i = 0; i < count && !in.failed(); ++i) {
    const std::uint32_t asn = in.get_u32("prefix owner");
    const std::uint64_t list_count = in.get_count("prefix list", 5);
    if (in.failed()) return;
    if (!first && asn <= previous) {
      in.fail("prefix owners not strictly ascending");
      return;
    }
    if (list_count == 0) {
      in.fail("empty prefix list (must be omitted)");
      return;
    }
    first = false;
    previous = asn;
    std::vector<net::Prefix4> list;
    list.reserve(list_count);
    for (std::uint64_t j = 0; j < list_count && !in.failed(); ++j) {
      const std::uint32_t bits = in.get_u32("prefix network");
      const std::uint8_t length = in.get_u8("prefix length");
      if (in.failed()) return;
      if (length > 32 || (bits & ~prefix_mask(length)) != 0) {
        in.fail("non-canonical prefix");
        return;
      }
      list.emplace_back(net::Ipv4Addr{bits}, length);
    }
    checkpoint.prefixes.emplace_back(asn::Asn{asn}, std::move(list));
  }
}

void get_transit(Cursor& in, StreamCheckpoint& checkpoint) {
  const std::uint64_t count = in.get_count("transit bits", 4);
  checkpoint.transit_asns.reserve(count);
  std::uint64_t previous = 0;
  bool first = true;
  for (std::uint64_t i = 0; i < count && !in.failed(); ++i) {
    const std::uint32_t asn = in.get_u32("transit ASN");
    if (in.failed()) return;
    if (!first && asn <= previous) {
      in.fail("transit ASNs not strictly ascending");
      return;
    }
    first = false;
    previous = asn;
    checkpoint.transit_asns.push_back(asn::Asn{asn});
  }
}

struct CheckpointMetrics {
  obs::Counter& writes_ok;
  obs::Counter& writes_failed;
  obs::Counter& loads_ok;
  obs::Counter& loads_rejected;

  static CheckpointMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static CheckpointMetrics metrics{
        reg.counter("asrel_checkpoint_writes_total{result=\"ok\"}",
                    "Stream checkpoint file writes by outcome"),
        reg.counter("asrel_checkpoint_writes_total{result=\"error\"}"),
        reg.counter("asrel_checkpoint_loads_total{result=\"ok\"}",
                    "Stream checkpoint file loads by outcome"),
        reg.counter("asrel_checkpoint_loads_total{result=\"rejected\"}"),
    };
    return metrics;
  }
};

}  // namespace

std::string to_checkpoint_bytes(const StreamCheckpoint& checkpoint) {
  std::string payload;
  put_payload(payload, checkpoint);

  std::string out;
  out.reserve(payload.size() + 28);
  out.append(kCheckpointMagic);
  put_u32(out, kCheckpointVersion);
  put_u64(out, payload.size());
  put_u64(out, fnv1a64(payload));
  out.append(payload);
  return out;
}

std::optional<StreamCheckpoint> parse_checkpoint_bytes(std::string_view bytes,
                                                       std::string* error) {
  const auto fail = [&](const std::string& message)
      -> std::optional<StreamCheckpoint> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  const std::size_t header = kCheckpointMagic.size() + 4 + 8 + 8;
  if (bytes.size() < header) return fail("truncated checkpoint header");
  if (bytes.substr(0, kCheckpointMagic.size()) != kCheckpointMagic) {
    return fail("bad checkpoint magic");
  }
  Cursor head;
  head.data = bytes.substr(kCheckpointMagic.size());
  const std::uint32_t version = head.get_u32("version");
  const std::uint64_t payload_size = head.get_u64("payload size");
  const std::uint64_t checksum = head.get_u64("checksum");
  if (version != kCheckpointVersion) {
    return fail("unsupported checkpoint version " + std::to_string(version));
  }
  const std::string_view payload = bytes.substr(header);
  if (payload.size() != payload_size) {
    return fail("checkpoint payload size mismatch (torn file?)");
  }
  if (fnv1a64(payload) != checksum) {
    return fail("checkpoint checksum mismatch");
  }

  Cursor in;
  in.data = payload;
  StreamCheckpoint checkpoint;
  auto& fp = checkpoint.fingerprint;
  fp.as_count = static_cast<std::int64_t>(in.get_u64("as_count"));
  fp.topo_seed = in.get_u64("topology seed");
  fp.scheme_seed = in.get_u64("scheme seed");
  fp.vantage_seed = in.get_u64("vantage seed");
  fp.vantage_targets = in.get_u32("vantage target count");
  fp.node_count = in.get_u64("node count");
  fp.node_hash = in.get_u64("node hash");

  checkpoint.epoch = in.get_u64("epoch");
  checkpoint.built_unix_ms = in.get_u64("built timestamp");
  checkpoint.feed_position = in.get_u64("feed position");
  const std::uint8_t dirty = in.get_u8("dirty flags");
  if (!in.failed() && (dirty & ~kDirtyMask) != 0) {
    in.fail("invalid dirty flags");
  }
  checkpoint.graph_dirty = (dirty & kDirtyGraph) != 0;
  checkpoint.paths_dirty = (dirty & kDirtyPaths) != 0;
  if (!in.failed() && fp.node_count > in.remaining()) {
    in.fail("implausible node count");
  }

  if (!in.failed()) get_edges(in, checkpoint);
  if (!in.failed()) get_ribs(in, checkpoint);
  if (!in.failed()) get_prefixes(in, checkpoint);
  if (!in.failed()) get_transit(in, checkpoint);
  if (!in.failed() && in.remaining() != 0) {
    in.fail("trailing bytes after the last section");
  }
  if (in.failed()) return fail(in.error);
  return checkpoint;
}

bool save_checkpoint_file(const StreamCheckpoint& checkpoint,
                          const std::string& path, std::string* error) {
  const std::size_t cap =
      serve::fault::FaultInjector::instance().checkpoint_write_cap();
  const bool ok =
      io::write_file_atomic(to_checkpoint_bytes(checkpoint), path, error, cap);
  auto& metrics = CheckpointMetrics::get();
  (ok ? metrics.writes_ok : metrics.writes_failed).inc();
  // Save failures are capped: a full disk fails every periodic save, and
  // one event per second tells the story without flooding the ring.
  static obs::LogSite save_ok_site{"stream.checkpoint", "save_ok", 4};
  static obs::LogSite save_failed_site{"stream.checkpoint", "save_failed", 2};
  if (ok) {
    obs::log_event(save_ok_site, obs::LogLevel::kInfo, 0,
                   {{"epoch", checkpoint.epoch}, {"path", path}});
  } else {
    obs::log_event(save_failed_site, obs::LogLevel::kError, 0,
                   {{"epoch", checkpoint.epoch},
                    {"path", path},
                    {"error", error != nullptr ? std::string_view{*error}
                                               : std::string_view{}}});
  }
  return ok;
}

std::optional<StreamCheckpoint> load_checkpoint_file(const std::string& path,
                                                     std::string* error) {
  const std::size_t cap =
      serve::fault::FaultInjector::instance().checkpoint_read_cap();
  auto& metrics = CheckpointMetrics::get();
  const auto bytes = io::read_file_capped(path, error, cap);
  if (!bytes) {
    metrics.loads_rejected.inc();
    return std::nullopt;
  }
  auto checkpoint = parse_checkpoint_bytes(*bytes, error);
  (checkpoint ? metrics.loads_ok : metrics.loads_rejected).inc();
  return checkpoint;
}

CheckpointDir::CheckpointDir(std::string dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(std::max<std::size_t>(1, keep)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort; save reports
}

std::string CheckpointDir::path_for_epoch(std::uint64_t epoch) const {
  std::string digits = std::to_string(epoch);
  digits.insert(0, digits.size() < 20 ? 20 - digits.size() : 0, '0');
  return dir_ + "/checkpoint-" + digits + ".ckpt";
}

std::vector<std::string> CheckpointDir::candidates() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator{dir_, ec}) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("checkpoint-") && name.ends_with(".ckpt")) {
      names.push_back(name);
    }
  }
  // Zero-padded epochs: lexical descending == numeric descending.
  std::sort(names.begin(), names.end(), std::greater<>{});
  std::vector<std::string> paths;
  paths.reserve(names.size());
  for (const auto& name : names) paths.push_back(dir_ + "/" + name);
  return paths;
}

bool CheckpointDir::save(const StreamCheckpoint& checkpoint,
                         std::string* error) {
  if (!save_checkpoint_file(checkpoint, path_for_epoch(checkpoint.epoch),
                            error)) {
    return false;
  }
  const auto existing = candidates();
  for (std::size_t i = keep_; i < existing.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(existing[i], ec);
  }
  return true;
}

}  // namespace asrel::stream
