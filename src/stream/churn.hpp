// Churn feed: the deterministic event model driving the live pipeline.
//
// A ChurnEvent is one unit of topology or routing-policy change — link
// appearance/disappearance, relationship or export-policy flips, prefix
// (re)announcements — the same churn a production pipeline sees from
// successive RIB dumps. Events come from two sources: a seeded generator
// that perturbs an existing world (tests, benches, soak runs) and a
// line-oriented replay file (operational driving). Both produce the same
// struct, and apply_churn_event is the single mutation path shared by the
// generator, the streaming session, and the reference rebuild — so a
// replayed sequence is bit-reproducible everywhere.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "asn/asn.hpp"
#include "topology/generator.hpp"
#include "topology/graph.hpp"

namespace asrel::stream {

enum class ChurnKind : std::uint8_t {
  kLinkAdd = 0,     ///< new adjacency between two existing ASes
  kLinkRemove,      ///< session teardown (edge tombstoned)
  kRelFlip,         ///< relationship renegotiated in place
  kScopeFlip,       ///< §6.1 partial-transit policy change on a P2C edge
  kPrefixAnnounce,  ///< origin announces one more prefix
  kPrefixWithdraw,  ///< origin withdraws one prefix
};

[[nodiscard]] std::string_view to_string(ChurnKind kind);

struct ChurnEvent {
  ChurnKind kind = ChurnKind::kLinkAdd;
  /// Link endpoints. For kLinkAdd/kRelFlip with rel == kP2C, `a` is the
  /// provider. For prefix events `a` is the origin and `b` is unused.
  asn::Asn a;
  asn::Asn b;
  topo::RelType rel = topo::RelType::kP2P;              ///< add / rel-flip
  topo::ExportScope scope = topo::ExportScope::kFull;   ///< scope-flip
  bool via_community = false;                           ///< scope-flip
  std::uint32_t prefix_host = 0;  ///< synthetic /24 network id for prefix events
};

struct ApplyResult {
  /// False when the event was a structural no-op: removing a link that
  /// does not exist, re-adding a live one, flipping to the current
  /// relationship, or prefix math on an unknown AS. No-ops leave the
  /// world untouched and are expected in any replayed feed.
  bool applied = false;
  /// Edges whose state changed — the seeds for the propagator's dirty
  /// frontier. Empty for prefix events: prefix churn sits below link
  /// granularity, so it never perturbs paths, validation, or the audit.
  std::vector<topo::EdgeId> touched;
};

/// Applies one event to the world. Never adds or removes AS nodes (the
/// streaming propagator's per-node state relies on a fixed node universe);
/// events naming an unknown ASN are rejected as no-ops.
ApplyResult apply_churn_event(topo::World& world, const ChurnEvent& event);

/// Deterministic, seedable generator: perturbs `world` (a scratch copy is
/// taken; the argument is not modified) into `count` events. The mix
/// includes link adds/removes (with occasional add-then-remove pairs of
/// the same link), relationship and scope flips, prefix churn, and a few
/// deliberate no-ops — the shapes the metamorphic suite must survive.
[[nodiscard]] std::vector<ChurnEvent> generate_churn(const topo::World& world,
                                                     std::uint64_t seed,
                                                     std::size_t count);

/// Replay file format: one event per line,
///   add <a> <b> p2c|p2p|s2s
///   remove <a> <b>
///   flip <a> <b> p2c|p2p|s2s
///   scope <a> <b> full|no-providers|customers-only community|silent
///   announce <asn> <net>
///   withdraw <asn> <net>
/// '#' starts a comment. Parsing is strict: any malformed line fails.
[[nodiscard]] std::string to_churn_text(std::span<const ChurnEvent> events);
[[nodiscard]] std::vector<ChurnEvent> parse_churn_text(
    std::string_view text, std::string* error = nullptr);

}  // namespace asrel::stream
