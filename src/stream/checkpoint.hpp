// Durable stream checkpoints: crash recovery for the live pipeline.
//
// A StreamCheckpoint captures everything a StreamSession cannot cheaply
// re-derive at restart: the churned edge table (the world's only mutable
// topology state — adjacency is reconstructible from it), the retained
// per-origin ribs (skipping the all-origin propagation that dominates a
// cold bootstrap), the live prefix table, the DeltaAudit's effective
// transit bits, the dirty flags, the publication epoch, and the feed
// position. Static state (attributes, clique, delegations, vantage
// points) is regenerated from the scenario parameters, which the
// fingerprint pins: a checkpoint refuses to restore against a different
// world.
//
// Format mirrors the snapshot container (io/wire.hpp primitives):
//   magic "ASRELCKP" | version u32 | payload_size u64 | fnv1a64 u64 |
//   payload. Truncation and bit-flips are rejected before any section is
//   parsed; counts are validated against the remaining payload. Files are
//   written with the snapshot's crash-safe temp+fsync+rename protocol
//   (io/atomic_file), so a crash mid-checkpoint leaves the previous file
//   intact. CheckpointDir rotates `checkpoint-<epoch>.ckpt` files and
//   keeps the newest two: the recovery ladder in recover_session
//   (session.hpp) tries newest -> previous -> cold bootstrap.
//
// The decoder is canonical-form-rejecting where decoding would otherwise
// normalize (prefix host bits, unordered sections, hybrid filler bytes):
// every accepted byte string re-encodes byte-identically, the invariant
// fuzz_checkpoint enforces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "asn/asn.hpp"
#include "bgp/propagation.hpp"
#include "netbase/ip.hpp"
#include "topology/graph.hpp"

namespace asrel::stream {

inline constexpr std::string_view kCheckpointMagic = "ASRELCKP";
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Pins the world a checkpoint belongs to. as_count + the three seeds +
/// the vantage target count determine every regenerated artifact; the
/// node hash cross-checks the regenerated node universe byte-for-byte.
struct CheckpointFingerprint {
  std::int64_t as_count = 0;
  std::uint64_t topo_seed = 0;
  std::uint64_t scheme_seed = 0;
  std::uint64_t vantage_seed = 0;
  std::uint32_t vantage_targets = 0;
  std::uint64_t node_count = 0;
  std::uint64_t node_hash = 0;  ///< fnv1a64 over LE node ASNs, NodeId order

  friend bool operator==(const CheckpointFingerprint&,
                         const CheckpointFingerprint&) = default;
};

struct StreamCheckpoint {
  CheckpointFingerprint fingerprint;
  std::uint64_t epoch = 0;
  std::uint64_t built_unix_ms = 0;
  /// Next churn-feed sequence number to consume (events [0, feed_position)
  /// are already reflected in this state).
  std::uint64_t feed_position = 0;
  bool graph_dirty = false;
  bool paths_dirty = false;

  std::vector<topo::Edge> edges;       ///< full table incl. tombstones
  std::vector<bgp::OriginRib> ribs;    ///< by origin NodeId
  /// Live prefix table, keyed by ascending ASN; only non-empty lists are
  /// stored (an empty list and an absent entry behave identically), each
  /// in its in-memory (announcement) order.
  std::vector<std::pair<asn::Asn, std::vector<net::Prefix4>>> prefixes;
  std::vector<asn::Asn> transit_asns;  ///< DeltaAudit set bits, ascending
};

/// Deterministic: the same checkpoint value always serializes to the same
/// bytes.
[[nodiscard]] std::string to_checkpoint_bytes(
    const StreamCheckpoint& checkpoint);

/// Returns nullopt and fills `*error` with a one-line diagnosis for wrong
/// magic/version, truncation, checksum mismatch, or any structurally
/// invalid or non-canonical section.
[[nodiscard]] std::optional<StreamCheckpoint> parse_checkpoint_bytes(
    std::string_view bytes, std::string* error = nullptr);

/// Crash-safe file wrappers. Both consult FaultInjector's checkpoint I/O
/// caps, so chaos tests can tear a write (ENOSPC after N bytes — the temp
/// file is discarded, the previous checkpoint survives) or a read (the
/// header rejects the truncated prefix).
[[nodiscard]] bool save_checkpoint_file(const StreamCheckpoint& checkpoint,
                                        const std::string& path,
                                        std::string* error = nullptr);
[[nodiscard]] std::optional<StreamCheckpoint> load_checkpoint_file(
    const std::string& path, std::string* error = nullptr);

/// Rotating checkpoint directory: `checkpoint-<epoch padded to 20>.ckpt`
/// filenames sort lexically == numerically, and pruning runs only after a
/// new file is durably in place, so the ladder always has the last `keep`
/// good checkpoints to fall back through.
class CheckpointDir {
 public:
  explicit CheckpointDir(std::string dir, std::size_t keep = 2);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::string path_for_epoch(std::uint64_t epoch) const;

  /// Existing checkpoint files, newest epoch first.
  [[nodiscard]] std::vector<std::string> candidates() const;

  /// Writes `checkpoint` under its epoch's filename, then prunes all but
  /// the newest `keep` files. Pruning failures are ignored (stale files
  /// are harmless); write failures are not.
  [[nodiscard]] bool save(const StreamCheckpoint& checkpoint,
                          std::string* error = nullptr);

 private:
  std::string dir_;
  std::size_t keep_;
};

}  // namespace asrel::stream
