#include "stream/cone_filter.hpp"

namespace asrel::stream {

namespace {

using topo::Edge;
using topo::NodeId;
using topo::RelType;

/// May a route climb from `self`'s neighbor up to `self` over this edge —
/// equivalently, may the cone walk descend from `self` — under *any* of
/// the edge's per-origin relationship resolutions?
[[nodiscard]] bool can_descend(const Edge& edge, NodeId self) {
  const auto allows = [&](RelType rel) {
    switch (rel) {
      case RelType::kP2C:
        // The provider side is `u` for both primary P2C edges and the
        // P2C-as-secondary resolution of hybrid edges.
        return self == edge.u;
      case RelType::kS2S:
        return true;
      case RelType::kP2P:
        return false;
    }
    return true;  // unknown relationship: stay conservative
  };
  if (allows(edge.rel)) return true;
  return edge.hybrid_rel.has_value() && allows(*edge.hybrid_rel);
}

}  // namespace

bool cone_filter_applies(const topo::Edge& edge) {
  return !edge.removed && edge.rel == RelType::kP2P && !edge.is_hybrid();
}

std::vector<std::uint8_t> p2p_add_candidates(const topo::AsGraph& graph,
                                             const topo::Edge& edge) {
  std::vector<std::uint8_t> candidates(graph.node_count(), 0);
  std::vector<NodeId> frontier;
  const auto seed = [&](NodeId node) {
    if (candidates[node] == 0) {
      candidates[node] = 1;
      frontier.push_back(node);
    }
  };
  seed(edge.u);
  seed(edge.v);
  while (!frontier.empty()) {
    const NodeId node = frontier.back();
    frontier.pop_back();
    for (const auto& neighbor : graph.neighbors(node)) {
      if (candidates[neighbor.node] != 0) continue;
      if (can_descend(graph.edge(neighbor.edge), node)) {
        candidates[neighbor.node] = 1;
        frontier.push_back(neighbor.node);
      }
    }
  }
  return candidates;
}

}  // namespace asrel::stream
