// The three-way link classification shared by the learning classifiers.
//
// ProbLink and TopoScope both reduce an InferredRel to one of three classes
// relative to the canonical (a < b) link orientation and back. The two
// copies of these helpers had already drifted (exhaustive switch vs
// default: fallthrough), so they live here once: a future change to the
// P2C orientation convention cannot land in only one algorithm.
#pragma once

#include "infer/inference.hpp"
#include "validation/label.hpp"

namespace asrel::infer {

/// Class labels, relative to the canonical (a < b) link orientation.
enum LinkClass : int {
  kLinkP2cAB = 0,  ///< link.a is the provider
  kLinkP2cBA = 1,  ///< link.b is the provider
  kLinkP2P = 2,
};
inline constexpr int kLinkClassCount = 3;

[[nodiscard]] inline LinkClass link_class_of(const val::AsLink& link,
                                             const InferredRel& rel) {
  if (rel.rel != topo::RelType::kP2C) return kLinkP2P;
  return rel.provider == link.a ? kLinkP2cAB : kLinkP2cBA;
}

[[nodiscard]] inline InferredRel rel_of_link_class(const val::AsLink& link,
                                                   LinkClass cls) {
  InferredRel rel;
  switch (cls) {
    case kLinkP2cAB:
      rel.rel = topo::RelType::kP2C;
      rel.provider = link.a;
      break;
    case kLinkP2cBA:
      rel.rel = topo::RelType::kP2C;
      rel.provider = link.b;
      break;
    case kLinkP2P:
      rel.rel = topo::RelType::kP2P;
      break;
  }
  return rel;
}

}  // namespace asrel::infer
