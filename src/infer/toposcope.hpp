// TopoScope (Jin et al., IMC 2020) reimplementation.
//
// Structure follows the published system: vantage points are split into
// groups to fight observation bias; a base inference runs per group; an
// ensemble classifier reconciles the per-group verdicts with global link
// features; a final stage predicts *hidden* links that no collector saw.
//
// Documented simplification: the original's gradient-boosted trees are
// replaced by a calibrated categorical naive-Bayes over the same feature
// families (group-vote distribution, global base verdict, visibility,
// clique distance). Like the original, the ensemble is trained on the
// available validation data — inheriting its bias, which is the paper's §6
// point.
#pragma once

#include <span>
#include <vector>

#include "infer/asrank.hpp"
#include "infer/inference.hpp"
#include "infer/observed.hpp"
#include "validation/cleaner.hpp"

namespace asrel::infer {

struct TopoScopeParams {
  int vp_groups = 8;
  AsRankParams base;
  double laplace = 1.0;
  /// Hidden-link prediction: two collector peers sharing at least this many
  /// observed neighbors (but no observed link) are predicted to interconnect.
  std::uint32_t hidden_min_common_neighbors = 8;
  /// Worker count for the per-group ensemble members and per-link feature /
  /// scoring passes (0 = hardware concurrency, 1 = serial). The inference is
  /// byte-identical for every setting.
  unsigned threads = 0;
};

struct HiddenLink {
  val::AsLink link;
  double confidence = 0.0;  ///< Jaccard similarity of neighbor sets
};

struct TopoScopeResult {
  Inference inference;
  std::vector<asn::Asn> clique;
  std::vector<HiddenLink> hidden_links;
  int groups_used = 0;
  std::size_t training_links = 0;
};

[[nodiscard]] TopoScopeResult run_toposcope(
    const ObservedPaths& observed, const AsRankResult& global,
    std::span<const val::CleanLabel> training,
    const TopoScopeParams& params = {});

}  // namespace asrel::infer
