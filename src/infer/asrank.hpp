// ASRank (Luckie et al., IMC 2013) reimplementation.
//
// Pipeline (documented against the published algorithm):
//   1. sanitize paths (done by ObservedPaths),
//   2. rank ASes by transit degree,
//   3. infer the provider-free clique (Bron-Kerbosch + extension),
//   4. seed provider->customer descents at triplets that contain two
//      consecutive clique members — the evidence the paper's §6.1 case study
//      shows to be *necessary* for a P2C verdict next to a Tier-1 — and
//      propagate descents across paths to a fixpoint,
//   5. seed additional descents at dominant-degree peaks of paths that never
//      touch the clique (regional hierarchies),
//   6. infer providers of vantage points from full-table first-hop shares,
//   7. resolve each link: clique mesh -> p2p; directed vote majority -> p2c;
//      unvoted links against a transit-degree-0 AS -> p2c (stub rule);
//      everything else -> p2p.
//
// Step 4's asymmetry (descents are only ever seeded *after* a clique pair,
// never on the ascending side) is what reproduces the paper's headline
// T1-TR failure: a Tier-1 customer that blocks peer redistribution never
// appears in a "C|T1|X" triplet and ends up inferred as a peer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "infer/clique.hpp"
#include "infer/inference.hpp"
#include "infer/observed.hpp"

namespace asrel::infer {

struct AsRankParams {
  CliqueParams clique;
  /// Step 5: the peak of a clique-free path seeds a descent only if its
  /// transit degree dominates its right neighbor by this factor...
  double peak_degree_ratio = 5.0;
  /// ...and is at least this large.
  std::uint32_t peak_min_transit_degree = 10;
  /// Step 6: a first-hop neighbor covering at least this share of a VP's
  /// origins is giving it a (near) full table, i.e. is its provider.
  double vp_full_table_share = 0.25;
  /// A first-hop neighbor covering no more than this share announces only
  /// its own cone: a peer of the VP (unless descent votes say otherwise).
  double vp_peer_max_share = 0.05;
  /// Noise floor: ignore first-hop neighbors seen for fewer origins.
  std::uint32_t vp_min_first_hops = 3;
  /// Unvoted clique-adjacent links: the non-clique side is inferred to be a
  /// customer when its transit degree is below this bound (this is the rule
  /// that mis-types anycast/research stubs peering with Tier-1s, §6).
  std::uint32_t clique_customer_td_max = 4;
  /// Unvoted stub links count as provider links only when broadly visible
  /// (a stub's transit link is seen by most collectors; an IXP peering of a
  /// stub is not).
  double stub_provider_vp_share = 0.2;
  /// Maximum descent-propagation passes (fixpoint usually in 3-4).
  int max_passes = 10;
};

struct AsRankResult {
  Inference inference;
  std::vector<asn::Asn> clique;
  int passes_used = 0;
};

[[nodiscard]] AsRankResult run_asrank(const ObservedPaths& observed,
                                      const AsRankParams& params = {});

/// Restricted variant used by TopoScope's vantage-point grouping: run the
/// pipeline on a subset of paths, optionally with a precomputed clique
/// (group views are too fragmentary to re-infer the clique reliably).
[[nodiscard]] AsRankResult run_asrank_subset(
    const ObservedPaths& observed, const AsRankParams& params,
    std::span<const std::uint32_t> path_ids,
    std::span<const asn::Asn> clique_override);

}  // namespace asrel::infer
