// ProbLink (Jin et al., NSDI 2019) reimplementation.
//
// Structure follows the published system: start from an ASRank labeling,
// then iteratively re-classify every link with a naive-Bayes model over
// link features, re-deriving the feature values that depend on neighboring
// links' current labels each round until convergence.
//
// Feature families (per the paper): triplet context (what kind of link
// precedes this one in observed paths), distance to the clique, vantage-
// point visibility, transit-degree imbalance, and path-position. The
// conditional probabilities are estimated from the *validation data* — the
// original does exactly this, which is why the paper's §6 finds ProbLink
// degrading hardest on link classes the validation data under-covers: the
// classifier literally never saw them in training.
#pragma once

#include <span>
#include <unordered_map>

#include "infer/asrank.hpp"
#include "infer/inference.hpp"
#include "infer/observed.hpp"
#include "validation/cleaner.hpp"

namespace asrel::infer {

struct ProbLinkParams {
  int max_iterations = 6;
  double laplace = 1.0;  ///< additive smoothing for the conditionals
  /// Stop when fewer than this fraction of links change per iteration.
  double convergence_fraction = 0.001;
  /// Worker count for the per-round scoring and triplet refresh
  /// (0 = hardware concurrency, 1 = serial). The inference is
  /// byte-identical for every setting.
  unsigned threads = 0;
};

struct ProbLinkResult {
  Inference inference;
  int iterations_used = 0;
  std::size_t training_links = 0;
  /// Posterior probability of the chosen class per link (final iteration) —
  /// the UNARI-style uncertainty signal the paper could not evaluate for
  /// lack of public artifacts (§1, footnote 1). Low-confidence links are
  /// exactly the "hard links" of §3.3.
  std::unordered_map<val::AsLink, double> confidence;
};

/// `training` is the cleaned validation data available to the researcher
/// (labels for a subset of links); links outside the observed data are
/// ignored.
[[nodiscard]] ProbLinkResult run_problink(
    const ObservedPaths& observed, const AsRankResult& initial,
    std::span<const val::CleanLabel> training,
    const ProbLinkParams& params = {});

}  // namespace asrel::infer
