#include "infer/problink.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/parallel.hpp"
#include "infer/link_class.hpp"
#include "obs/trace.hpp"

namespace asrel::infer {

namespace {

using asn::Asn;
using val::AsLink;

/// Feature value counts per feature family (categorical naive Bayes).
struct FeatureSpec {
  int cardinality;
};
constexpr std::array<FeatureSpec, 5> kFeatures{{
    {16},  // 0: triplet context (4 predecessor categories x 2 orientations)
    {4},   // 1: distance to clique {adjacent,1,2,3+/none}
    {5},   // 2: VP visibility bucket
    {9},   // 3: signed transit-degree log-ratio bucket
    {3},   // 4: path position {origin-side, mixed, middle}
}};

struct LinkFeatures {
  std::array<int, kFeatures.size()> value{};
};

/// Predecessor category for the triplet feature.
enum Pred : int { kPredNone = 0, kPredDown = 1, kPredUp = 2, kPredPeer = 3 };

int bucket_visibility(std::uint32_t vp_count) {
  if (vp_count <= 1) return 0;
  if (vp_count <= 3) return 1;
  if (vp_count <= 7) return 2;
  if (vp_count <= 15) return 3;
  return 4;
}

int bucket_ratio(std::uint32_t td_a, std::uint32_t td_b) {
  const double r = std::log2(static_cast<double>(td_a + 1) /
                             static_cast<double>(td_b + 1));
  const int clamped = static_cast<int>(std::clamp(std::round(r), -4.0, 4.0));
  return clamped + 4;
}

}  // namespace

ProbLinkResult run_problink(const ObservedPaths& observed,
                            const AsRankResult& initial,
                            std::span<const val::CleanLabel> training,
                            const ProbLinkParams& params) {
  obs::StageScope stage{"infer.problink"};
  ProbLinkResult result;
  const auto& links = observed.link_order();
  const std::size_t link_count = links.size();
  core::ThreadPool& pool = core::ThreadPool::shared();
  const unsigned threads = core::ThreadPool::effective_threads(params.threads);

  // Current labels, indexed like link_order.
  std::vector<InferredRel> current(link_count);
  std::unordered_map<AsLink, std::uint32_t> link_index;
  link_index.reserve(link_count);
  for (std::size_t i = 0; i < link_count; ++i) {
    link_index.emplace(links[i], static_cast<std::uint32_t>(i));
    const auto* rel = initial.inference.find(links[i]);
    current[i] = rel != nullptr ? *rel : InferredRel{};
  }

  // ---- Static features -----------------------------------------------------
  std::unordered_set<Asn> clique_set(initial.clique.begin(),
                                     initial.clique.end());

  // Distance to clique and position statistics, one path sweep.
  std::vector<int> clique_distance(link_count, 3);  // 3 == "3+/none"
  std::vector<std::uint32_t> end_occurrences(link_count, 0);
  std::vector<std::uint32_t> total_occurrences(link_count, 0);

  // Triplet-context adjacency: for every (predecessor link, this link,
  // orientation) pair, how often it occurs. Orientation 0 = traversed a->b.
  struct AdjKey {
    std::uint32_t prev;
    std::uint32_t cur;
    std::uint8_t prev_forward;  // predecessor traversed in canonical order?
    std::uint8_t cur_forward;
    bool operator==(const AdjKey&) const = default;
  };
  struct AdjKeyHash {
    std::size_t operator()(const AdjKey& k) const {
      std::uint64_t x = (std::uint64_t{k.prev} << 32) | k.cur;
      x ^= (std::uint64_t{k.prev_forward} << 1 | k.cur_forward) << 62;
      x *= 0x9E3779B97F4A7C15ull;
      return static_cast<std::size_t>(x ^ (x >> 32));
    }
  };
  std::unordered_map<AdjKey, std::uint32_t, AdjKeyHash> adjacency;

  for (std::size_t p = 0; p < observed.path_count(); ++p) {
    const auto path = observed.path(p);
    int last_clique = -1;
    std::uint32_t prev_id = ~std::uint32_t{0};
    std::uint8_t prev_forward = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (clique_set.contains(path[i])) last_clique = static_cast<int>(i);
      const AsLink link{path[i], path[i + 1]};
      const auto it = link_index.find(link);
      if (it == link_index.end()) continue;
      const std::uint32_t id = it->second;
      const std::uint8_t forward = path[i] == link.a ? 1 : 0;

      ++total_occurrences[id];
      if (i + 2 == path.size()) ++end_occurrences[id];
      const int distance =
          last_clique < 0 ? 3
                          : std::min(3, static_cast<int>(i) - last_clique);
      clique_distance[id] = std::min(clique_distance[id], distance);

      if (prev_id != ~std::uint32_t{0}) {
        ++adjacency[AdjKey{prev_id, id, prev_forward, forward}];
      }
      prev_id = id;
      prev_forward = forward;
    }
  }

  // Flattened adjacency for the per-round refresh: contiguous slices chunk
  // across workers, and because the per-(link, orientation) tallies are
  // plain integer sums, no chunking choice can change the totals.
  const std::vector<std::pair<AdjKey, std::uint32_t>> adjacency_flat(
      adjacency.begin(), adjacency.end());

  // Assemble static feature parts.
  std::vector<LinkFeatures> features(link_count);
  for (std::size_t i = 0; i < link_count; ++i) {
    const auto& link = links[i];
    const auto* info = observed.link(link);
    features[i].value[1] = clique_distance[i];
    features[i].value[2] = bucket_visibility(info ? info->vp_count : 0);
    const auto ia = observed.index_of(link.a);
    const auto ib = observed.index_of(link.b);
    features[i].value[3] =
        bucket_ratio(ia ? observed.transit_degree(*ia) : 0,
                     ib ? observed.transit_degree(*ib) : 0);
    const double end_share =
        total_occurrences[i] == 0
            ? 0.0
            : static_cast<double>(end_occurrences[i]) / total_occurrences[i];
    features[i].value[4] = end_share > 0.8 ? 0 : end_share > 0.2 ? 1 : 2;
  }

  // Dynamic feature 0 (triplet context) from the current labeling.
  using TripletCounts =
      std::vector<std::array<std::array<std::uint32_t, 4>, 2>>;
  const auto refresh_triplet_feature = [&] {
    // Per (link, orientation): counts of predecessor categories, summed
    // over adjacency chunks (one per worker; integer sums are merge-order
    // independent, so the result matches the serial accumulation exactly).
    const std::size_t chunks = std::max<std::size_t>(
        1, std::min<std::size_t>(threads, adjacency_flat.size()));
    const TripletCounts counts = core::parallel_reduce_ordered(
        pool, chunks, threads,
        TripletCounts(link_count, {{{0, 0, 0, 0}, {0, 0, 0, 0}}}),
        [&](std::size_t chunk) {
          obs::TraceSpan span{"infer.problink.triplet_chunk"};
          TripletCounts local(link_count, {{{0, 0, 0, 0}, {0, 0, 0, 0}}});
          const std::size_t begin = chunk * adjacency_flat.size() / chunks;
          const std::size_t end =
              (chunk + 1) * adjacency_flat.size() / chunks;
          for (std::size_t k = begin; k < end; ++k) {
            const auto& [key, count] = adjacency_flat[k];
            const auto& prev_link = links[key.prev];
            const auto& prev_rel = current[key.prev];
            // Direction of travel across the predecessor: from x to y where
            // the pair (x, y) is (a, b) if prev_forward, else (b, a).
            const Asn from = key.prev_forward ? prev_link.a : prev_link.b;
            Pred category = kPredPeer;
            if (prev_rel.rel == topo::RelType::kP2C) {
              category = prev_rel.provider == from ? kPredDown : kPredUp;
            }
            local[key.cur][key.cur_forward][static_cast<int>(category)] +=
                count;
          }
          return local;
        },
        [&](TripletCounts& acc, TripletCounts&& partial) {
          for (std::size_t i = 0; i < link_count; ++i) {
            for (int orient = 0; orient < 2; ++orient) {
              for (int c = 0; c < 4; ++c) {
                acc[i][orient][c] += partial[i][orient][c];
              }
            }
          }
        });
    pool.run_indexed(link_count, threads, [&](std::size_t i) {
      std::array<int, 2> dominant{kPredNone, kPredNone};
      for (int orient = 0; orient < 2; ++orient) {
        std::uint32_t best = 0;
        for (int c = 1; c < 4; ++c) {
          if (counts[i][orient][c] > best) {
            best = counts[i][orient][c];
            dominant[orient] = c;
          }
        }
      }
      features[i].value[0] = dominant[0] * 4 + dominant[1];
    });
  };

  // ---- Training labels ------------------------------------------------------
  std::vector<std::pair<std::uint32_t, LinkClass>> train;
  for (const auto& label : training) {
    const auto it = link_index.find(label.link);
    if (it == link_index.end()) continue;
    InferredRel rel;
    rel.rel = label.rel;
    rel.provider = label.provider;
    train.emplace_back(it->second, link_class_of(label.link, rel));
  }
  result.training_links = train.size();

  // ---- Iterative classification ---------------------------------------------
  int iteration = 0;
  for (; iteration < params.max_iterations; ++iteration) {
    refresh_triplet_feature();

    // Estimate priors and conditionals from the training set under the
    // *current* dynamic features.
    std::array<double, kLinkClassCount> prior{};
    std::array<std::vector<std::array<double, kLinkClassCount>>,
               kFeatures.size()>
        conditional;
    for (std::size_t f = 0; f < kFeatures.size(); ++f) {
      conditional[f].assign(kFeatures[f].cardinality, {});
    }
    for (const auto& [index, cls] : train) {
      prior[cls] += 1.0;
      for (std::size_t f = 0; f < kFeatures.size(); ++f) {
        conditional[f][features[index].value[f]][cls] += 1.0;
      }
    }
    std::array<double, kLinkClassCount> log_prior{};
    const double total = prior[0] + prior[1] + prior[2];
    for (int c = 0; c < kLinkClassCount; ++c) {
      log_prior[c] = std::log((prior[c] + params.laplace) /
                              (total + kLinkClassCount * params.laplace));
    }
    std::array<std::vector<std::array<double, kLinkClassCount>>,
               kFeatures.size()>
        log_cond;
    for (std::size_t f = 0; f < kFeatures.size(); ++f) {
      log_cond[f].assign(kFeatures[f].cardinality, {});
      for (int v = 0; v < kFeatures[f].cardinality; ++v) {
        for (int c = 0; c < kLinkClassCount; ++c) {
          log_cond[f][v][c] =
              std::log((conditional[f][v][c] + params.laplace) /
                       (prior[c] + kFeatures[f].cardinality * params.laplace));
        }
      }
    }

    // Re-classify every link. Each link's verdict reads only the frozen
    // model and its own features, so the scores parallelize; the verdicts
    // are applied on the caller thread in link order below.
    struct Verdict {
      LinkClass best;
      double confidence;
    };
    const auto verdicts = core::parallel_map_ordered<Verdict>(
        pool, link_count, threads, [&](std::size_t i) {
          std::array<double, kLinkClassCount> score = log_prior;
          for (std::size_t f = 0; f < kFeatures.size(); ++f) {
            for (int c = 0; c < kLinkClassCount; ++c) {
              score[c] += log_cond[f][features[i].value[f]][c];
            }
          }
          const auto best = static_cast<LinkClass>(
              std::max_element(score.begin(), score.end()) - score.begin());
          // Normalized posterior of the winning class (softmax over the
          // three log scores, stabilized by the max).
          const double peak = score[best];
          double exp_total = 0;
          for (int c = 0; c < kLinkClassCount; ++c) {
            exp_total += std::exp(score[c] - peak);
          }
          return Verdict{best, 1.0 / exp_total};
        });

    std::size_t changed = 0;
    for (std::size_t i = 0; i < link_count; ++i) {
      result.confidence[links[i]] = verdicts[i].confidence;
      const InferredRel updated = rel_of_link_class(links[i], verdicts[i].best);
      const bool same = updated.rel == current[i].rel &&
                        (updated.rel != topo::RelType::kP2C ||
                         updated.provider == current[i].provider);
      if (!same) {
        current[i] = updated;
        ++changed;
      }
    }
    if (static_cast<double>(changed) <
        params.convergence_fraction * static_cast<double>(link_count)) {
      ++iteration;
      break;
    }
  }
  result.iterations_used = iteration;

  for (std::size_t i = 0; i < link_count; ++i) {
    result.inference.set(links[i], current[i]);
  }
  return result;
}

}  // namespace asrel::infer
