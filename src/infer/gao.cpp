#include "infer/gao.hpp"

#include <cmath>
#include <unordered_map>

namespace asrel::infer {

namespace {

using asn::Asn;

std::uint64_t directed_key(Asn a, Asn b) {
  return (std::uint64_t{a.value()} << 32) | b.value();
}

}  // namespace

Inference run_gao(const ObservedPaths& observed, const GaoParams& params) {
  std::unordered_map<std::uint64_t, std::uint32_t> votes;

  for (std::size_t p = 0; p < observed.path_count(); ++p) {
    const auto path = observed.path(p);
    if (path.size() < 2) continue;
    // Top of the hill: highest node degree.
    std::size_t top = 0;
    std::uint32_t top_degree = 0;
    for (std::size_t i = 0; i < path.size(); ++i) {
      const auto index = observed.index_of(path[i]);
      const std::uint32_t degree = index ? observed.node_degree(*index) : 0;
      if (degree > top_degree) {
        top_degree = degree;
        top = i;
      }
    }
    // Left of the top the path ascends, right of it it descends.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (i + 1 <= top) {
        ++votes[directed_key(path[i + 1], path[i])];  // right provides left
      } else {
        ++votes[directed_key(path[i], path[i + 1])];  // left provides right
      }
    }
  }

  Inference inference;
  for (const auto& link : observed.link_order()) {
    const auto va = [&] {
      const auto it = votes.find(directed_key(link.a, link.b));
      return it == votes.end() ? 0u : it->second;
    }();
    const auto vb = [&] {
      const auto it = votes.find(directed_key(link.b, link.a));
      return it == votes.end() ? 0u : it->second;
    }();
    InferredRel rel;
    const auto ia = observed.index_of(link.a);
    const auto ib = observed.index_of(link.b);
    const double da = ia ? observed.node_degree(*ia) : 0;
    const double db = ib ? observed.node_degree(*ib) : 0;
    const double band = std::fabs(std::log2((da + 1.0) / (db + 1.0)));

    if (va > 0 && vb > 0 &&
        static_cast<double>(std::max(va, vb)) <
            params.dominance * static_cast<double>(std::min(va, vb)) &&
        band < params.peer_degree_band) {
      rel.rel = topo::RelType::kP2P;
    } else if (va >= vb) {
      rel.rel = topo::RelType::kP2C;
      rel.provider = link.a;
    } else {
      rel.rel = topo::RelType::kP2C;
      rel.provider = link.b;
    }
    inference.set(link, rel);
  }
  return inference;
}

}  // namespace asrel::infer
