#include "infer/complex.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace asrel::infer {

namespace {

using asn::Asn;

struct Evidence {
  std::uint32_t descent_xy = 0;  // [C,C,...] descent crossing x->y
  std::uint32_t descent_yx = 0;
  std::uint32_t peak = 0;        // link is the local peak of a clique-free path
  std::uint32_t after_clique_member_xy = 0;  // [T1, y] with x == T1
  std::uint32_t after_clique_member_yx = 0;
};

}  // namespace

std::vector<ComplexCandidate> detect_complex_relationships(
    const ObservedPaths& observed, std::span<const asn::Asn> clique,
    const ComplexParams& params) {
  std::unordered_set<Asn> clique_set(clique.begin(), clique.end());
  std::unordered_map<val::AsLink, Evidence> evidence;

  for (std::size_t p = 0; p < observed.path_count(); ++p) {
    const auto path = observed.path(p);
    if (path.size() < 2) continue;

    bool touches_clique = false;
    bool descending = false;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const Asn x = path[i];
      const Asn y = path[i + 1];
      if (clique_set.contains(x)) touches_clique = true;
      const val::AsLink link{x, y};
      if (descending) {
        auto& entry = evidence[link];
        (x == link.a) ? ++entry.descent_xy : ++entry.descent_yx;
      }
      if (clique_set.contains(x) && clique_set.contains(y)) {
        descending = true;
        continue;
      }
      if (clique_set.contains(x) && !clique_set.contains(y)) {
        auto& entry = evidence[link];
        (x == link.a) ? ++entry.after_clique_member_xy
                      : ++entry.after_clique_member_yx;
      }
    }
    if (clique_set.contains(path.back())) touches_clique = true;

    // Local-peak evidence: in a clique-free path, the adjacent pair with
    // the two highest transit degrees behaves like the peering at the top.
    if (!touches_clique && path.size() >= 3) {
      std::size_t best = 0;
      std::uint64_t best_score = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto ia = observed.index_of(path[i]);
        const auto ib = observed.index_of(path[i + 1]);
        const std::uint64_t score =
            (ia ? observed.transit_degree(*ia) : 0) +
            (ib ? observed.transit_degree(*ib) : 0);
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      if (best > 0 && best + 2 < path.size()) {
        ++evidence[val::AsLink{path[best], path[best + 1]}].peak;
      }
    }
  }

  std::vector<ComplexCandidate> out;
  for (const auto& [link, entry] : evidence) {
    const std::uint32_t descent =
        std::max(entry.descent_xy, entry.descent_yx);
    // Hybrid: transit behaviour for some origins, peering for others.
    if (descent >= params.min_descent_evidence &&
        entry.peak >= params.min_peak_evidence) {
      ComplexCandidate candidate;
      candidate.link = link;
      candidate.kind = ComplexKind::kHybrid;
      candidate.evidence = std::min(descent, entry.peak);
      out.push_back(candidate);
      continue;
    }
    // Partial transit: a clique member repeatedly carries this neighbor's
    // routes downward, yet no clique pair ever precedes the link (no
    // export across the top) and the neighbor clearly has a cone.
    const bool a_clique = clique_set.contains(link.a);
    const bool b_clique = clique_set.contains(link.b);
    if (a_clique == b_clique) continue;
    const Asn customer = a_clique ? link.b : link.a;
    const std::uint32_t after_member = a_clique
                                           ? entry.after_clique_member_xy
                                           : entry.after_clique_member_yx;
    const auto customer_index = observed.index_of(customer);
    const std::uint32_t customer_td =
        customer_index ? observed.transit_degree(*customer_index) : 0;
    if (descent == 0 && after_member >= params.min_partial_transit_occurrences &&
        customer_td >= params.min_customer_transit_degree) {
      ComplexCandidate candidate;
      candidate.link = link;
      candidate.kind = ComplexKind::kPartialTransit;
      candidate.evidence = after_member;
      candidate.provider = a_clique ? link.a : link.b;
      out.push_back(candidate);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ComplexCandidate& a, const ComplexCandidate& b) {
              if (a.evidence != b.evidence) return a.evidence > b.evidence;
              return a.link < b.link;
            });
  return out;
}

}  // namespace asrel::infer
