// Common result type for all relationship-inference algorithms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "asn/asn.hpp"
#include "topology/rel_type.hpp"
#include "validation/label.hpp"

namespace asrel::infer {

/// One inferred relationship. For kP2C, `provider` names the provider side.
struct InferredRel {
  topo::RelType rel = topo::RelType::kP2P;
  asn::Asn provider;
};

/// The output of a classifier: a label for every visible link.
class Inference {
 public:
  void set(const val::AsLink& link, const InferredRel& rel) {
    const auto [it, inserted] = map_.try_emplace(link, rel);
    if (!inserted) it->second = rel;
    if (inserted) order_.push_back(link);
  }

  [[nodiscard]] const InferredRel* find(const val::AsLink& link) const {
    const auto it = map_.find(link);
    return it == map_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] const std::vector<val::AsLink>& order() const {
    return order_;
  }

  /// Fraction of links on which two inferences agree (shared links only).
  [[nodiscard]] double agreement_with(const Inference& other) const;

 private:
  std::unordered_map<val::AsLink, InferredRel> map_;
  std::vector<val::AsLink> order_;
};

}  // namespace asrel::infer
