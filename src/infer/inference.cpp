#include "infer/inference.hpp"

namespace asrel::infer {

double Inference::agreement_with(const Inference& other) const {
  std::size_t shared = 0;
  std::size_t agree = 0;
  for (const auto& link : order_) {
    const auto* mine = find(link);
    const auto* theirs = other.find(link);
    if (theirs == nullptr) continue;
    ++shared;
    const bool same =
        mine->rel == theirs->rel &&
        (mine->rel != topo::RelType::kP2C || mine->provider == theirs->provider);
    if (same) ++agree;
  }
  return shared == 0 ? 1.0
                     : static_cast<double>(agree) / static_cast<double>(shared);
}

}  // namespace asrel::infer
