// Clique (provider-free Tier-1 core) inference, Luckie et al. 2013 style:
// run Bron-Kerbosch over the visible links among the top transit-degree
// ASes, keep the largest clique containing the #1 AS, then greedily extend
// with further ASes (in rank order) that link to every member.
#pragma once

#include <vector>

#include "asn/asn.hpp"
#include "infer/observed.hpp"

namespace asrel::infer {

struct CliqueParams {
  std::size_t seed_pool = 14;      ///< BK runs on the top-N by transit degree
  std::size_t extension_pool = 60; ///< ranks considered for greedy extension
};

/// Returns clique ASNs sorted ascending. Deterministic.
[[nodiscard]] std::vector<asn::Asn> infer_clique(const ObservedPaths& observed,
                                                 const CliqueParams& params);

}  // namespace asrel::infer
