#include "infer/clique.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace asrel::infer {

namespace {

/// Exact Bron-Kerbosch (no pivoting; the pool is tiny) collecting the
/// largest clique in the pool.
void bron_kerbosch(const std::vector<std::vector<bool>>& adjacent,
                   std::vector<std::size_t>& current,
                   std::vector<std::size_t> candidates,
                   std::vector<std::size_t> excluded,
                   std::vector<std::size_t>& best) {
  if (candidates.empty() && excluded.empty()) {
    // Largest clique wins; ties resolve to the lexicographically smallest
    // (by pool rank) member set for determinism.
    if (current.size() > best.size() ||
        (current.size() == best.size() && current < best)) {
      best = current;
    }
    return;
  }
  // Iterate over a copy; candidates shrinks as we go.
  const std::vector<std::size_t> iteration = candidates;
  for (const std::size_t v : iteration) {
    std::vector<std::size_t> next_candidates;
    std::vector<std::size_t> next_excluded;
    for (const std::size_t u : candidates) {
      if (adjacent[v][u]) next_candidates.push_back(u);
    }
    for (const std::size_t u : excluded) {
      if (adjacent[v][u]) next_excluded.push_back(u);
    }
    current.push_back(v);
    bron_kerbosch(adjacent, current, std::move(next_candidates),
                  std::move(next_excluded), best);
    current.pop_back();
    candidates.erase(std::find(candidates.begin(), candidates.end(), v));
    excluded.push_back(v);
  }
}

/// How often each AS appears directly after two consecutive members of
/// `clique` in a path — i.e. receives transit through the top of the
/// hierarchy. Provider-free ASes never do; customers of clique members do.
std::unordered_map<asn::Asn, std::uint32_t> transit_evidence(
    const ObservedPaths& observed,
    const std::unordered_set<asn::Asn>& clique) {
  std::unordered_map<asn::Asn, std::uint32_t> counts;
  for (std::size_t p = 0; p < observed.path_count(); ++p) {
    const auto path = observed.path(p);
    for (std::size_t i = 0; i + 2 < path.size(); ++i) {
      if (clique.contains(path[i]) && clique.contains(path[i + 1]) &&
          path[i] != path[i + 1]) {
        ++counts[path[i + 2]];
      }
    }
  }
  return counts;
}

constexpr std::uint32_t kTransitedThreshold = 2;

}  // namespace

std::vector<asn::Asn> infer_clique(const ObservedPaths& observed,
                                   const CliqueParams& params) {
  const auto rank = observed.rank_order();
  const std::size_t pool =
      std::min(params.seed_pool, static_cast<std::size_t>(rank.size()));
  if (pool == 0) return {};

  const auto linked = [&](AsIndex a, AsIndex b) {
    return observed.link(AsLink{observed.asn_at(a), observed.asn_at(b)}) !=
           nullptr;
  };

  std::vector<std::vector<bool>> adjacent(pool, std::vector<bool>(pool));
  for (std::size_t i = 0; i < pool; ++i) {
    for (std::size_t j = i + 1; j < pool; ++j) {
      adjacent[i][j] = adjacent[j][i] = linked(rank[i], rank[j]);
    }
  }

  std::vector<std::size_t> current;
  std::vector<std::size_t> candidates(pool);
  for (std::size_t i = 0; i < pool; ++i) candidates[i] = i;
  std::vector<std::size_t> best;
  bron_kerbosch(adjacent, current, std::move(candidates), {}, best);
  if (best.empty()) best.push_back(0);  // degenerate: just the top AS

  std::unordered_set<asn::Asn> clique;
  for (const std::size_t i : best) clique.insert(observed.asn_at(rank[i]));

  // A member that receives transit *through* two other members is not
  // provider-free; purge the worst offender at a time so the evidence gets
  // cleaner as the seed purifies.
  const auto purify = [&] {
    bool removed_any = false;
    while (clique.size() > 1) {
      const auto evidence = transit_evidence(observed, clique);
      asn::Asn worst;
      std::uint32_t worst_count = 0;
      for (const asn::Asn member : clique) {
        const auto it = evidence.find(member);
        const std::uint32_t count = it == evidence.end() ? 0 : it->second;
        if (count > worst_count ||
            (count == worst_count && count > 0 && member < worst)) {
          worst_count = count;
          worst = member;
        }
      }
      if (worst_count < kTransitedThreshold) break;
      clique.erase(worst);
      removed_any = true;
    }
    return removed_any;
  };

  // Greedy extension over the next ranks: fully linked to the current
  // clique and never transited through it.
  const std::size_t extension =
      std::min(params.extension_pool, static_cast<std::size_t>(rank.size()));
  const auto extend = [&] {
    bool added_any = false;
    for (std::size_t i = 0; i < extension; ++i) {
      const asn::Asn candidate = observed.asn_at(rank[i]);
      if (clique.contains(candidate)) continue;
      bool connected_to_all = true;
      for (const asn::Asn member : clique) {
        if (observed.link(AsLink{candidate, member}) == nullptr) {
          connected_to_all = false;
          break;
        }
      }
      if (!connected_to_all) continue;
      const auto evidence = transit_evidence(observed, clique);
      const auto it = evidence.find(candidate);
      if (it != evidence.end() && it->second >= kTransitedThreshold) continue;
      clique.insert(candidate);
      added_any = true;
    }
    return added_any;
  };

  // Alternate purification and extension until stable: a new member's
  // peering paths can expose an earlier member as a customer, and a purge
  // can unblock a candidate that failed the fully-linked test before.
  purify();
  for (int round = 0; round < 4; ++round) {
    const bool grew = extend();
    const bool shrank = purify();
    if (!grew && !shrank) break;
  }

  std::vector<asn::Asn> out(clique.begin(), clique.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace asrel::infer
