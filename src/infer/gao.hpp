// Gao's original valley-free heuristic (ToN 2001): the historical baseline
// the paper's §3.1 opens with. For every path, the AS with the highest
// (node) degree is the top of the hill; every pair left of it votes
// "right provider of left", every pair right of it votes "left provider of
// right". Majority voting settles each link; near-ties become peers.
#pragma once

#include "infer/inference.hpp"
#include "infer/observed.hpp"

namespace asrel::infer {

struct GaoParams {
  /// A link is a peer when neither direction dominates by this factor and
  /// the endpoint degrees are within `peer_degree_band` of each other
  /// (Gao's "not too different in size" condition).
  double dominance = 2.0;
  double peer_degree_band = 0.5;  ///< |log2(da/db)| below this => comparable
};

[[nodiscard]] Inference run_gao(const ObservedPaths& observed,
                                const GaoParams& params = {});

}  // namespace asrel::infer
