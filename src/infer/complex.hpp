// Complex-relationship detection (Giotsas et al. 2014, discussed in §3.1
// and §3.3 of the paper): hybrid links (different relationships at
// different PoPs) and partial-transit links.
//
// Both kinds are exactly the entries the paper says must be handled
// explicitly during validation (§4.2); this detector lets a pipeline flag
// them *before* a simple per-link label is forced on them.
//
// Observable signals, per link (x, y):
//  * hybrid: the link shows transit evidence (it appears in paths right
//    after two consecutive clique members — a descent) AND peering
//    evidence (it appears as the local peak of clique-free paths whose
//    joint endpoints dominate the path's transit degrees).
//  * partial transit: the link is clique-adjacent, carries enough transit
//    volume on the customer side, but is never exported across the top —
//    no clique triplet exists (the §6.1 signature).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "infer/asrank.hpp"
#include "infer/observed.hpp"

namespace asrel::infer {

enum class ComplexKind : std::uint8_t { kHybrid, kPartialTransit };

struct ComplexCandidate {
  val::AsLink link;
  ComplexKind kind = ComplexKind::kHybrid;
  /// For kHybrid: min(descent, peak) occurrence count.
  /// For kPartialTransit: customer-side occurrence count.
  std::uint32_t evidence = 0;
  /// For kPartialTransit: the provider side.
  asn::Asn provider;
};

struct ComplexParams {
  std::uint32_t min_descent_evidence = 2;
  std::uint32_t min_peak_evidence = 2;
  /// Partial transit: minimum transit degree for the customer side (pure
  /// stubs are indistinguishable from plain peering here).
  std::uint32_t min_customer_transit_degree = 5;
  std::uint32_t min_partial_transit_occurrences = 3;
};

[[nodiscard]] std::vector<ComplexCandidate> detect_complex_relationships(
    const ObservedPaths& observed, std::span<const asn::Asn> clique,
    const ComplexParams& params = {});

}  // namespace asrel::infer
