#include "infer/asrank.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace.hpp"

namespace asrel::infer {

namespace {

using asn::Asn;

std::uint64_t directed_key(Asn a, Asn b) {
  return (std::uint64_t{a.value()} << 32) | b.value();
}

AsRankResult run_impl(const ObservedPaths& observed,
                      const AsRankParams& params,
                      std::span<const std::uint32_t> path_ids,
                      std::span<const asn::Asn> clique_override,
                      bool subset_mode) {
  AsRankResult result;
  if (clique_override.empty()) {
    result.clique = infer_clique(observed, params.clique);
  } else {
    result.clique.assign(clique_override.begin(), clique_override.end());
  }
  std::unordered_set<Asn> clique_set(result.clique.begin(),
                                     result.clique.end());

  // Directed provider->customer evidence. `inferred` holds pairs accepted
  // as descents (continuation triggers); `votes` counts supporting path
  // positions for majority resolution. A pair inferred in *both* directions
  // (siblings, mutual-transit artifacts) is ambiguous and must never act as
  // a descent trigger: treating it as one lets an ascending occurrence start
  // a bogus descent that cascades up entire provider chains.
  std::unordered_set<std::uint64_t> inferred;
  std::unordered_map<std::uint64_t, std::uint32_t> votes;

  const auto trigger_ok = [&](Asn x, Asn y) {
    return inferred.contains(directed_key(x, y)) &&
           !inferred.contains(directed_key(y, x));
  };

  // One sweep over the paths. Always extends `inferred`; only counts votes
  // when `record` is set (the final sweep, once the trigger set is stable
  // and self-consistent — early sweeps can contain transient bad triggers).
  const auto descent_pass = [&](bool record) {
    const std::size_t before = inferred.size();
    for (const std::uint32_t p : path_ids) {
      const auto path = observed.path(p);
      bool descending = false;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const Asn x = path[i];
        const Asn y = path[i + 1];
        if (descending) {
          // Consistency guard: no valley-free descent ever enters a clique
          // member (it is provider-free). Hitting one means the descent was
          // started by a bad trigger — abandon it instead of voting
          // "x provides a Tier-1" and cascading garbage.
          if (clique_set.contains(y)) {
            descending = false;
            continue;
          }
          inferred.insert(directed_key(x, y));
          if (record) ++votes[directed_key(x, y)];
          continue;
        }
        if (clique_set.contains(x) && clique_set.contains(y)) {
          descending = true;  // peak crossed; votes start at the next pair
          continue;
        }
        if (trigger_ok(x, y)) {
          descending = true;  // known descent continues after this pair
        }
      }
    }
    return inferred.size() != before;
  };

  // ---- Step 4: clique-pair seeded descents, to a fixpoint ----------------
  int pass = 0;
  for (; pass < params.max_passes; ++pass) {
    if (!descent_pass(/*record=*/false)) break;
  }
  result.passes_used = pass + 1;

  // ---- Step 5: dominant peaks of clique-free paths -----------------------
  {
    bool seeded = false;
    for (const std::uint32_t p : path_ids) {
      const auto path = observed.path(p);
      if (path.size() < 3) continue;
      bool touches_clique = false;
      for (const Asn hop : path) {
        if (clique_set.contains(hop)) {
          touches_clique = true;
          break;
        }
      }
      if (touches_clique) continue;

      std::size_t peak = 0;
      std::uint32_t peak_td = 0;
      for (std::size_t i = 0; i < path.size(); ++i) {
        const auto index = observed.index_of(path[i]);
        const std::uint32_t td = index ? observed.transit_degree(*index) : 0;
        if (td > peak_td) {
          peak_td = td;
          peak = i;
        }
      }
      if (peak + 1 >= path.size()) continue;
      if (peak_td < params.peak_min_transit_degree) continue;
      const auto right = observed.index_of(path[peak + 1]);
      const std::uint32_t right_td =
          right ? observed.transit_degree(*right) : 0;
      if (static_cast<double>(peak_td) <
          params.peak_degree_ratio * std::max(1u, right_td)) {
        continue;
      }
      // Visibility gate: a transit link below a peak is seen by most
      // collectors; a peering link is only seen from inside the peak's
      // customer cone. Without this, IXP peers of regional transits would
      // be swallowed as customers.
      const auto* info = observed.link(AsLink{path[peak], path[peak + 1]});
      if (info == nullptr ||
          static_cast<double>(info->vp_count) <
              params.stub_provider_vp_share *
                  static_cast<double>(observed.vp_count())) {
        continue;
      }
      inferred.insert(directed_key(path[peak], path[peak + 1]));
      ++votes[directed_key(path[peak], path[peak + 1])];
      seeded = true;
    }
    if (seeded) {
      for (int extra = 0; extra < params.max_passes; ++extra) {
        if (!descent_pass(/*record=*/false)) break;
      }
    }
  }

  // ---- Final vote sweep: the trigger set is stable, count the evidence ----
  descent_pass(/*record=*/true);

  // ---- Step 6: relationships of vantage points from feed sizes ------------
  // A VP's first-hop coverage tells how much of a table each neighbor gives
  // it: a (near) full table marks a provider, a small slice marks a peer
  // announcing only its own cone (Luckie et al. classify collector-peer
  // sessions the same way). Customer sessions are left to the descent votes.
  std::unordered_set<std::uint64_t> vp_peer_links;
  if (!subset_mode) {
    for (std::uint16_t vp = 0; vp < observed.vp_count(); ++vp) {
      const Asn vp_asn = observed.vp_asns()[vp];
      const std::uint32_t origins = observed.origin_count(vp);
      if (origins == 0 || clique_set.contains(vp_asn)) continue;
      const auto vp_index = observed.index_of(vp_asn);
      if (!vp_index) continue;
      for (const Asn neighbor : observed.ases()) {
        // Clique neighbors are judged by triplet evidence only: a Tier-1
        // peer's customer cone can rival a backup provider's selected share,
        // so feed size cannot separate the two.
        if (clique_set.contains(neighbor)) continue;
        const std::uint32_t covered = observed.first_hop_count(vp, neighbor);
        if (covered < params.vp_min_first_hops) continue;
        const double share =
            static_cast<double>(covered) / static_cast<double>(origins);
        if (share >= params.vp_full_table_share) {
          inferred.insert(directed_key(neighbor, vp_asn));
          votes[directed_key(neighbor, vp_asn)] += 2;  // full table: provider
        } else if (share <= params.vp_peer_max_share) {
          const AsLink link{vp_asn, neighbor};
          vp_peer_links.insert(
              (std::uint64_t{link.a.value()} << 32) | link.b.value());
        }
      }
    }
  }

  // ---- Step 7: per-link resolution ----------------------------------------
  // Subset runs label only the links their paths actually contain.
  std::vector<AsLink> scope;
  if (subset_mode) {
    std::unordered_set<AsLink> seen;
    for (const std::uint32_t p : path_ids) {
      const auto path = observed.path(p);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const AsLink link{path[i], path[i + 1]};
        if (seen.insert(link).second) scope.push_back(link);
      }
    }
  } else {
    scope.assign(observed.link_order().begin(), observed.link_order().end());
  }

  for (const auto& link : scope) {
    InferredRel rel;
    const bool a_clique = clique_set.contains(link.a);
    const bool b_clique = clique_set.contains(link.b);
    if (a_clique && b_clique) {
      rel.rel = topo::RelType::kP2P;
      result.inference.set(link, rel);
      continue;
    }
    const auto count_votes = [&](Asn from, Asn to) {
      const auto it = votes.find(directed_key(from, to));
      return it == votes.end() ? 0u : it->second;
    };
    const std::uint32_t va = count_votes(link.a, link.b);
    const std::uint32_t vb = count_votes(link.b, link.a);
    if (va > vb) {
      rel.rel = topo::RelType::kP2C;
      rel.provider = link.a;
    } else if (vb > va) {
      rel.rel = topo::RelType::kP2C;
      rel.provider = link.b;
    } else if (va > 0) {
      rel.rel = topo::RelType::kP2P;  // perfectly conflicting evidence
    } else if (vp_peer_links.contains(
                   (std::uint64_t{link.a.value()} << 32) | link.b.value())) {
      rel.rel = topo::RelType::kP2P;  // small feed into a collector peer
    } else {
      // No votes at all.
      const auto ia = observed.index_of(link.a);
      const auto ib = observed.index_of(link.b);
      const std::uint32_t ta = ia ? observed.transit_degree(*ia) : 0;
      const std::uint32_t tb = ib ? observed.transit_degree(*ib) : 0;
      const auto* info = observed.link(link);
      const bool widely_seen =
          info != nullptr &&
          static_cast<double>(info->vp_count) >=
              params.stub_provider_vp_share *
                  static_cast<double>(observed.vp_count());
      if ((a_clique && tb <= params.clique_customer_td_max) ||
          (b_clique && ta <= params.clique_customer_td_max)) {
        // Clique-adjacent small AS: assumed customer. This is precisely the
        // aggregation error behind the paper's S-T1 finding.
        rel.rel = topo::RelType::kP2C;
        rel.provider = a_clique ? link.a : link.b;
      } else if (ta == 0 && tb > 0 && widely_seen) {
        rel.rel = topo::RelType::kP2C;  // broadly visible stub uplink
        rel.provider = link.b;
      } else if (tb == 0 && ta > 0 && widely_seen) {
        rel.rel = topo::RelType::kP2C;
        rel.provider = link.a;
      } else {
        rel.rel = topo::RelType::kP2P;
      }
    }
    result.inference.set(link, rel);
  }
  return result;
}

}  // namespace

AsRankResult run_asrank(const ObservedPaths& observed,
                        const AsRankParams& params) {
  obs::StageScope stage{"infer.asrank"};
  std::vector<std::uint32_t> all(observed.path_count());
  std::iota(all.begin(), all.end(), 0u);
  return run_impl(observed, params, all, {}, /*subset_mode=*/false);
}

AsRankResult run_asrank_subset(const ObservedPaths& observed,
                               const AsRankParams& params,
                               std::span<const std::uint32_t> path_ids,
                               std::span<const asn::Asn> clique_override) {
  return run_impl(observed, params, path_ids, clique_override,
                  /*subset_mode=*/true);
}

}  // namespace asrel::infer
