// The observed world: sanitized collector paths and the statistics every
// inference algorithm consumes (visible links, node/transit degrees, VP
// visibility). Inference algorithms operate on *this* view only — they never
// touch the ground-truth graph, mirroring how the real tools consume
// Route Views / RIS dumps.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "asn/asn.hpp"
#include "bgp/propagation.hpp"
#include "validation/label.hpp"

namespace asrel::infer {

using val::AsLink;

struct SanitizeStats {
  std::size_t input_paths = 0;
  std::size_t dropped_loop = 0;
  std::size_t dropped_reserved = 0;  ///< AS_TRANS / private / documentation
  std::size_t kept = 0;
};

/// Dense AS index local to the observed data set.
using AsIndex = std::uint32_t;
inline constexpr AsIndex kNoAs = ~AsIndex{0};

struct LinkInfo {
  std::uint32_t link_id = 0;      ///< dense id
  std::uint32_t occurrences = 0;  ///< path positions where the link appears
  std::uint16_t vp_count = 0;     ///< distinct VPs that observed the link
};

class ObservedPaths {
 public:
  /// Sanitization (the first step of every published pipeline):
  ///  * prepending collapsed,
  ///  * paths with loops (non-consecutive repeats) dropped,
  ///  * paths containing reserved ASNs or AS_TRANS dropped.
  [[nodiscard]] static ObservedPaths build(const bgp::PathTable& table,
                                           SanitizeStats* stats = nullptr);

  // ---- paths ----
  [[nodiscard]] std::size_t path_count() const { return offsets_.size() - 1; }
  [[nodiscard]] std::span<const asn::Asn> path(std::size_t i) const {
    return std::span{arena_}.subspan(offsets_[i],
                                     offsets_[i + 1] - offsets_[i]);
  }
  [[nodiscard]] std::uint16_t vp_of_path(std::size_t i) const {
    return path_vp_[i];
  }

  // ---- AS universe ----
  [[nodiscard]] std::size_t as_count() const { return ases_.size(); }
  [[nodiscard]] asn::Asn asn_at(AsIndex index) const { return ases_[index]; }
  [[nodiscard]] std::optional<AsIndex> index_of(asn::Asn asn) const;
  [[nodiscard]] std::span<const asn::Asn> ases() const { return ases_; }

  /// Number of distinct neighbors observed next to this AS while it is in
  /// the middle of a path — Luckie et al.'s "transit degree".
  [[nodiscard]] std::uint32_t transit_degree(AsIndex index) const {
    return transit_degree_[index];
  }
  [[nodiscard]] std::uint32_t node_degree(AsIndex index) const {
    return node_degree_[index];
  }

  /// ASes sorted by (transit degree desc, node degree desc, asn asc) — the
  /// processing order of the ASRank pipeline.
  [[nodiscard]] std::span<const AsIndex> rank_order() const { return rank_; }

  // ---- links ----
  [[nodiscard]] const std::unordered_map<AsLink, LinkInfo>& links() const {
    return links_;
  }
  [[nodiscard]] const LinkInfo* link(const AsLink& link) const;
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Links in deterministic (first-observed) order.
  [[nodiscard]] std::span<const AsLink> link_order() const {
    return link_order_;
  }

  // ---- vantage points ----
  [[nodiscard]] std::span<const asn::Asn> vp_asns() const { return vp_asns_; }
  [[nodiscard]] std::size_t vp_count() const { return vp_asns_.size(); }

  /// Distinct origins for which `neighbor` is the VP's first hop — the
  /// "full table?" signal used to infer VP-adjacent relationships.
  [[nodiscard]] std::uint32_t first_hop_count(std::uint16_t vp,
                                              asn::Asn neighbor) const;
  [[nodiscard]] std::uint32_t origin_count(std::uint16_t vp) const;

 private:
  std::vector<asn::Asn> arena_;
  std::vector<std::uint32_t> offsets_{0};
  std::vector<std::uint16_t> path_vp_;

  std::vector<asn::Asn> ases_;  // sorted
  std::vector<std::uint32_t> transit_degree_;
  std::vector<std::uint32_t> node_degree_;
  std::vector<AsIndex> rank_;

  std::unordered_map<AsLink, LinkInfo> links_;
  std::vector<AsLink> link_order_;

  std::vector<asn::Asn> vp_asns_;
  std::vector<std::unordered_map<asn::Asn, std::uint32_t>> first_hop_;
  std::vector<std::uint32_t> origins_per_vp_;
};

}  // namespace asrel::infer
