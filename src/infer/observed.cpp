#include "infer/observed.hpp"

#include <algorithm>
#include <unordered_set>

namespace asrel::infer {

namespace {

using asn::Asn;

/// Inserts into a sorted vector iff absent; returns true when inserted.
template <typename T>
bool insert_sorted_unique(std::vector<T>& values, const T& value) {
  const auto it = std::lower_bound(values.begin(), values.end(), value);
  if (it != values.end() && *it == value) return false;
  values.insert(it, value);
  return true;
}

}  // namespace

ObservedPaths ObservedPaths::build(const bgp::PathTable& table,
                                   SanitizeStats* stats) {
  ObservedPaths out;
  SanitizeStats local;

  const auto vps = table.vantage_points();
  out.vp_asns_.reserve(vps.size());
  for (const auto& vp : vps) out.vp_asns_.push_back(vp.asn);
  out.first_hop_.resize(vps.size());
  out.origins_per_vp_.assign(vps.size(), 0);

  // Pass 1: sanitize and store paths; collect the AS universe.
  std::unordered_set<Asn> as_set;
  std::vector<Asn> hops;
  std::unordered_set<Asn> seen_in_path;
  table.for_each_path([&](const bgp::PathTable::PathRef& ref) {
    ++local.input_paths;
    hops.clear();
    for (const Asn hop : ref.path) {
      if (hops.empty() || hops.back() != hop) hops.push_back(hop);
    }
    bool reserved = false;
    for (const Asn hop : hops) {
      if (asn::is_reserved(hop)) {
        reserved = true;
        break;
      }
    }
    if (reserved) {
      ++local.dropped_reserved;
      return;
    }
    seen_in_path.clear();
    for (const Asn hop : hops) {
      if (!seen_in_path.insert(hop).second) {
        ++local.dropped_loop;
        return;
      }
    }
    ++local.kept;
    out.arena_.insert(out.arena_.end(), hops.begin(), hops.end());
    out.offsets_.push_back(static_cast<std::uint32_t>(out.arena_.size()));
    out.path_vp_.push_back(static_cast<std::uint16_t>(ref.vp_index));
    for (const Asn hop : hops) as_set.insert(hop);

    // VP first-hop statistics.
    if (hops.size() >= 2) {
      ++out.first_hop_[ref.vp_index][hops[1]];
    }
    ++out.origins_per_vp_[ref.vp_index];
  });

  out.ases_.assign(as_set.begin(), as_set.end());
  std::sort(out.ases_.begin(), out.ases_.end());
  const auto index_of = [&](Asn asn) {
    return static_cast<AsIndex>(
        std::lower_bound(out.ases_.begin(), out.ases_.end(), asn) -
        out.ases_.begin());
  };

  // Pass 2: degrees, transit degrees, link statistics.
  const std::size_t n = out.ases_.size();
  std::vector<std::vector<AsIndex>> neighbor_sets(n);
  std::vector<std::vector<AsIndex>> transit_sets(n);
  std::vector<std::vector<std::uint16_t>> link_vps;

  for (std::size_t p = 0; p < out.path_count(); ++p) {
    const auto path = out.path(p);
    const std::uint16_t vp = out.path_vp_[p];
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const AsIndex a = index_of(path[i]);
      const AsIndex b = index_of(path[i + 1]);
      insert_sorted_unique(neighbor_sets[a], b);
      insert_sorted_unique(neighbor_sets[b], a);
      if (i + 2 < path.size()) {
        const AsIndex c = index_of(path[i + 2]);
        insert_sorted_unique(transit_sets[b], a);
        insert_sorted_unique(transit_sets[b], c);
      }
      const AsLink link{path[i], path[i + 1]};
      auto [it, inserted] = out.links_.try_emplace(link);
      if (inserted) {
        it->second.link_id = static_cast<std::uint32_t>(out.link_order_.size());
        out.link_order_.push_back(link);
        link_vps.emplace_back();
      }
      ++it->second.occurrences;
      auto& vps_of_link = link_vps[it->second.link_id];
      const auto pos =
          std::lower_bound(vps_of_link.begin(), vps_of_link.end(), vp);
      if (pos == vps_of_link.end() || *pos != vp) {
        vps_of_link.insert(pos, vp);
      }
    }
  }
  for (auto& [link, info] : out.links_) {
    info.vp_count = static_cast<std::uint16_t>(link_vps[info.link_id].size());
  }

  out.node_degree_.resize(n);
  out.transit_degree_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.node_degree_[i] = static_cast<std::uint32_t>(neighbor_sets[i].size());
    out.transit_degree_[i] =
        static_cast<std::uint32_t>(transit_sets[i].size());
  }

  out.rank_.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.rank_[i] = static_cast<AsIndex>(i);
  std::sort(out.rank_.begin(), out.rank_.end(), [&](AsIndex a, AsIndex b) {
    if (out.transit_degree_[a] != out.transit_degree_[b]) {
      return out.transit_degree_[a] > out.transit_degree_[b];
    }
    if (out.node_degree_[a] != out.node_degree_[b]) {
      return out.node_degree_[a] > out.node_degree_[b];
    }
    return out.ases_[a] < out.ases_[b];
  });

  if (stats != nullptr) *stats = local;
  return out;
}

std::optional<AsIndex> ObservedPaths::index_of(asn::Asn asn) const {
  const auto it = std::lower_bound(ases_.begin(), ases_.end(), asn);
  if (it == ases_.end() || *it != asn) return std::nullopt;
  return static_cast<AsIndex>(it - ases_.begin());
}

const LinkInfo* ObservedPaths::link(const AsLink& link) const {
  const auto it = links_.find(link);
  return it == links_.end() ? nullptr : &it->second;
}

std::uint32_t ObservedPaths::first_hop_count(std::uint16_t vp,
                                             asn::Asn neighbor) const {
  const auto& map = first_hop_[vp];
  const auto it = map.find(neighbor);
  return it == map.end() ? 0 : it->second;
}

std::uint32_t ObservedPaths::origin_count(std::uint16_t vp) const {
  return origins_per_vp_[vp];
}

}  // namespace asrel::infer
