#include "infer/toposcope.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace asrel::infer {

namespace {

using asn::Asn;
using val::AsLink;

enum Class : int { kP2cAB = 0, kP2cBA = 1, kP2P = 2 };
constexpr int kClassCount = 3;

Class class_of(const AsLink& link, const InferredRel& rel) {
  if (rel.rel != topo::RelType::kP2C) return kP2P;
  return rel.provider == link.a ? kP2cAB : kP2cBA;
}

InferredRel rel_of(const AsLink& link, Class cls) {
  InferredRel rel;
  switch (cls) {
    case kP2cAB:
      rel.rel = topo::RelType::kP2C;
      rel.provider = link.a;
      break;
    case kP2cBA:
      rel.rel = topo::RelType::kP2C;
      rel.provider = link.b;
      break;
    default:
      rel.rel = topo::RelType::kP2P;
  }
  return rel;
}

int bucket_votes(int votes) { return std::min(votes, 4); }

int bucket_visibility(std::uint32_t vp_count) {
  if (vp_count <= 1) return 0;
  if (vp_count <= 3) return 1;
  if (vp_count <= 7) return 2;
  if (vp_count <= 15) return 3;
  return 4;
}

}  // namespace

TopoScopeResult run_toposcope(const ObservedPaths& observed,
                              const AsRankResult& global,
                              std::span<const val::CleanLabel> training,
                              const TopoScopeParams& params) {
  TopoScopeResult result;
  result.clique = global.clique;

  // ---- Vantage-point grouping ----------------------------------------------
  // Sort VPs by feed size, deal them round-robin so groups get comparable
  // coverage (the original groups by view similarity; round-robin over the
  // size ranking is the deterministic equivalent for our purposes).
  const int group_count =
      std::max(1, std::min<int>(params.vp_groups,
                                static_cast<int>(observed.vp_count())));
  result.groups_used = group_count;

  std::vector<std::uint16_t> vp_order(observed.vp_count());
  for (std::size_t i = 0; i < vp_order.size(); ++i) {
    vp_order[i] = static_cast<std::uint16_t>(i);
  }
  std::sort(vp_order.begin(), vp_order.end(),
            [&](std::uint16_t a, std::uint16_t b) {
              if (observed.origin_count(a) != observed.origin_count(b)) {
                return observed.origin_count(a) > observed.origin_count(b);
              }
              return observed.vp_asns()[a] < observed.vp_asns()[b];
            });
  std::vector<int> group_of_vp(observed.vp_count(), 0);
  for (std::size_t i = 0; i < vp_order.size(); ++i) {
    group_of_vp[vp_order[i]] = static_cast<int>(i % group_count);
  }

  std::vector<std::vector<std::uint32_t>> group_paths(group_count);
  for (std::size_t p = 0; p < observed.path_count(); ++p) {
    group_paths[group_of_vp[observed.vp_of_path(p)]].push_back(
        static_cast<std::uint32_t>(p));
  }

  // ---- Per-group base inference ---------------------------------------------
  std::vector<Inference> group_inference;
  group_inference.reserve(group_count);
  for (int g = 0; g < group_count; ++g) {
    group_inference.push_back(
        run_asrank_subset(observed, params.base, group_paths[g],
                          global.clique)
            .inference);
  }

  // ---- Feature assembly -------------------------------------------------------
  const auto& links = observed.link_order();
  struct Features {
    int votes_ab, votes_ba, votes_p2p;  // bucketed group votes
    int global_class;
    int visibility;
  };
  std::vector<Features> features(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    int ab = 0;
    int ba = 0;
    int pp = 0;
    for (const auto& inference : group_inference) {
      const auto* rel = inference.find(links[i]);
      if (rel == nullptr) continue;
      switch (class_of(links[i], *rel)) {
        case kP2cAB:
          ++ab;
          break;
        case kP2cBA:
          ++ba;
          break;
        default:
          ++pp;
      }
    }
    const auto* global_rel = global.inference.find(links[i]);
    const auto* info = observed.link(links[i]);
    features[i] = {bucket_votes(ab), bucket_votes(ba), bucket_votes(pp),
                   global_rel ? class_of(links[i], *global_rel) : kP2P,
                   bucket_visibility(info ? info->vp_count : 0)};
  }

  // ---- Ensemble: naive Bayes trained on the validation data -----------------
  std::unordered_map<AsLink, std::uint32_t> link_index;
  for (std::size_t i = 0; i < links.size(); ++i) {
    link_index.emplace(links[i], static_cast<std::uint32_t>(i));
  }
  std::vector<std::pair<std::uint32_t, Class>> train;
  for (const auto& label : training) {
    const auto it = link_index.find(label.link);
    if (it == link_index.end()) continue;
    InferredRel rel;
    rel.rel = label.rel;
    rel.provider = label.provider;
    train.emplace_back(it->second, class_of(label.link, rel));
  }
  result.training_links = train.size();

  constexpr std::array<int, 5> kCardinality{5, 5, 5, 3, 5};
  const auto value_of = [&](const Features& f, int feature) {
    switch (feature) {
      case 0:
        return f.votes_ab;
      case 1:
        return f.votes_ba;
      case 2:
        return f.votes_p2p;
      case 3:
        return f.global_class;
      default:
        return f.visibility;
    }
  };

  std::array<double, kClassCount> prior{};
  std::array<std::vector<std::array<double, kClassCount>>, 5> conditional;
  for (int f = 0; f < 5; ++f) conditional[f].assign(kCardinality[f], {});
  for (const auto& [index, cls] : train) {
    prior[cls] += 1.0;
    for (int f = 0; f < 5; ++f) {
      conditional[f][value_of(features[index], f)][cls] += 1.0;
    }
  }
  const double total = prior[0] + prior[1] + prior[2];
  std::array<double, kClassCount> log_prior{};
  for (int c = 0; c < kClassCount; ++c) {
    log_prior[c] = std::log((prior[c] + params.laplace) /
                            (total + kClassCount * params.laplace));
  }
  std::array<std::vector<std::array<double, kClassCount>>, 5> log_cond;
  for (int f = 0; f < 5; ++f) {
    log_cond[f].assign(kCardinality[f], {});
    for (int v = 0; v < kCardinality[f]; ++v) {
      for (int c = 0; c < kClassCount; ++c) {
        log_cond[f][v][c] =
            std::log((conditional[f][v][c] + params.laplace) /
                     (prior[c] + kCardinality[f] * params.laplace));
      }
    }
  }

  for (std::size_t i = 0; i < links.size(); ++i) {
    std::array<double, kClassCount> score = log_prior;
    for (int f = 0; f < 5; ++f) {
      for (int c = 0; c < kClassCount; ++c) {
        score[c] += log_cond[f][value_of(features[i], f)][c];
      }
    }
    const Class best = static_cast<Class>(
        std::max_element(score.begin(), score.end()) - score.begin());
    result.inference.set(links[i], rel_of(links[i], best));
  }

  // ---- Hidden-link prediction -------------------------------------------------
  // Collector peers have (near) complete neighbor sets; two of them sharing
  // many neighbors without an observed link between them very likely
  // interconnect privately or via an IXP the collectors miss.
  {
    // Neighbor sets from observed links.
    std::unordered_map<Asn, std::vector<Asn>> neighbors;
    for (const auto& link : links) {
      neighbors[link.a].push_back(link.b);
      neighbors[link.b].push_back(link.a);
    }
    for (auto& [asn, list] : neighbors) std::sort(list.begin(), list.end());

    const auto vp_asns = observed.vp_asns();
    for (std::size_t i = 0; i < vp_asns.size(); ++i) {
      for (std::size_t j = i + 1; j < vp_asns.size(); ++j) {
        const AsLink link{vp_asns[i], vp_asns[j]};
        if (link.a == link.b) continue;
        if (observed.link(link) != nullptr) continue;
        const auto ita = neighbors.find(vp_asns[i]);
        const auto itb = neighbors.find(vp_asns[j]);
        if (ita == neighbors.end() || itb == neighbors.end()) continue;
        std::vector<Asn> common;
        std::set_intersection(ita->second.begin(), ita->second.end(),
                              itb->second.begin(), itb->second.end(),
                              std::back_inserter(common));
        if (common.size() < params.hidden_min_common_neighbors) continue;
        const double unions = static_cast<double>(
            ita->second.size() + itb->second.size() - common.size());
        result.hidden_links.push_back(
            {link, static_cast<double>(common.size()) / unions});
      }
    }
    std::sort(result.hidden_links.begin(), result.hidden_links.end(),
              [](const HiddenLink& a, const HiddenLink& b) {
                if (a.confidence != b.confidence) {
                  return a.confidence > b.confidence;
                }
                return a.link < b.link;
              });
  }
  return result;
}

}  // namespace asrel::infer
