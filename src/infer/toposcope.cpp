#include "infer/toposcope.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/parallel.hpp"
#include "infer/link_class.hpp"
#include "obs/trace.hpp"

namespace asrel::infer {

namespace {

using asn::Asn;
using val::AsLink;

int bucket_votes(int votes) { return std::min(votes, 4); }

int bucket_visibility(std::uint32_t vp_count) {
  if (vp_count <= 1) return 0;
  if (vp_count <= 3) return 1;
  if (vp_count <= 7) return 2;
  if (vp_count <= 15) return 3;
  return 4;
}

}  // namespace

TopoScopeResult run_toposcope(const ObservedPaths& observed,
                              const AsRankResult& global,
                              std::span<const val::CleanLabel> training,
                              const TopoScopeParams& params) {
  obs::StageScope stage{"infer.toposcope"};
  TopoScopeResult result;
  result.clique = global.clique;
  core::ThreadPool& pool = core::ThreadPool::shared();
  const unsigned threads = core::ThreadPool::effective_threads(params.threads);

  // ---- Vantage-point grouping ----------------------------------------------
  // Sort VPs by feed size, deal them round-robin so groups get comparable
  // coverage (the original groups by view similarity; round-robin over the
  // size ranking is the deterministic equivalent for our purposes).
  const int group_count =
      std::max(1, std::min<int>(params.vp_groups,
                                static_cast<int>(observed.vp_count())));
  result.groups_used = group_count;

  std::vector<std::uint16_t> vp_order(observed.vp_count());
  for (std::size_t i = 0; i < vp_order.size(); ++i) {
    vp_order[i] = static_cast<std::uint16_t>(i);
  }
  std::sort(vp_order.begin(), vp_order.end(),
            [&](std::uint16_t a, std::uint16_t b) {
              if (observed.origin_count(a) != observed.origin_count(b)) {
                return observed.origin_count(a) > observed.origin_count(b);
              }
              return observed.vp_asns()[a] < observed.vp_asns()[b];
            });
  std::vector<int> group_of_vp(observed.vp_count(), 0);
  for (std::size_t i = 0; i < vp_order.size(); ++i) {
    group_of_vp[vp_order[i]] = static_cast<int>(i % group_count);
  }

  std::vector<std::vector<std::uint32_t>> group_paths(group_count);
  for (std::size_t p = 0; p < observed.path_count(); ++p) {
    group_paths[group_of_vp[observed.vp_of_path(p)]].push_back(
        static_cast<std::uint32_t>(p));
  }

  // ---- Per-group base inference ---------------------------------------------
  // The ensemble members see disjoint path subsets and share only read-only
  // inputs, so they run concurrently; collecting them in group-index order
  // keeps the result invariant under scheduling.
  const std::vector<Inference> group_inference =
      core::parallel_map_ordered<Inference>(
          pool, static_cast<std::size_t>(group_count), threads,
          [&](std::size_t g) {
            obs::TraceSpan span{"infer.toposcope.group"};
            return run_asrank_subset(observed, params.base, group_paths[g],
                                     global.clique)
                .inference;
          });

  // ---- Feature assembly -------------------------------------------------------
  const auto& links = observed.link_order();
  struct Features {
    int votes_ab, votes_ba, votes_p2p;  // bucketed group votes
    int global_class;
    int visibility;
  };
  std::vector<Features> features(links.size());
  pool.run_indexed(links.size(), threads, [&](std::size_t i) {
    int ab = 0;
    int ba = 0;
    int pp = 0;
    for (const auto& inference : group_inference) {
      const auto* rel = inference.find(links[i]);
      if (rel == nullptr) continue;
      switch (link_class_of(links[i], *rel)) {
        case kLinkP2cAB:
          ++ab;
          break;
        case kLinkP2cBA:
          ++ba;
          break;
        default:
          ++pp;
      }
    }
    const auto* global_rel = global.inference.find(links[i]);
    const auto* info = observed.link(links[i]);
    features[i] = {bucket_votes(ab), bucket_votes(ba), bucket_votes(pp),
                   global_rel ? link_class_of(links[i], *global_rel)
                              : kLinkP2P,
                   bucket_visibility(info ? info->vp_count : 0)};
  });

  // ---- Ensemble: naive Bayes trained on the validation data -----------------
  std::unordered_map<AsLink, std::uint32_t> link_index;
  for (std::size_t i = 0; i < links.size(); ++i) {
    link_index.emplace(links[i], static_cast<std::uint32_t>(i));
  }
  std::vector<std::pair<std::uint32_t, LinkClass>> train;
  for (const auto& label : training) {
    const auto it = link_index.find(label.link);
    if (it == link_index.end()) continue;
    InferredRel rel;
    rel.rel = label.rel;
    rel.provider = label.provider;
    train.emplace_back(it->second, link_class_of(label.link, rel));
  }
  result.training_links = train.size();

  constexpr std::array<int, 5> kCardinality{5, 5, 5, 3, 5};
  const auto value_of = [&](const Features& f, int feature) {
    switch (feature) {
      case 0:
        return f.votes_ab;
      case 1:
        return f.votes_ba;
      case 2:
        return f.votes_p2p;
      case 3:
        return f.global_class;
      default:
        return f.visibility;
    }
  };

  std::array<double, kLinkClassCount> prior{};
  std::array<std::vector<std::array<double, kLinkClassCount>>, 5> conditional;
  for (int f = 0; f < 5; ++f) conditional[f].assign(kCardinality[f], {});
  for (const auto& [index, cls] : train) {
    prior[cls] += 1.0;
    for (int f = 0; f < 5; ++f) {
      conditional[f][value_of(features[index], f)][cls] += 1.0;
    }
  }
  const double total = prior[0] + prior[1] + prior[2];
  std::array<double, kLinkClassCount> log_prior{};
  for (int c = 0; c < kLinkClassCount; ++c) {
    log_prior[c] = std::log((prior[c] + params.laplace) /
                            (total + kLinkClassCount * params.laplace));
  }
  std::array<std::vector<std::array<double, kLinkClassCount>>, 5> log_cond;
  for (int f = 0; f < 5; ++f) {
    log_cond[f].assign(kCardinality[f], {});
    for (int v = 0; v < kCardinality[f]; ++v) {
      for (int c = 0; c < kLinkClassCount; ++c) {
        log_cond[f][v][c] =
            std::log((conditional[f][v][c] + params.laplace) /
                     (prior[c] + kCardinality[f] * params.laplace));
      }
    }
  }

  // Score links concurrently; apply in index order so Inference's internal
  // bookkeeping (insertion order) matches the serial run exactly.
  const std::vector<LinkClass> verdicts =
      core::parallel_map_ordered<LinkClass>(
          pool, links.size(), threads, [&](std::size_t i) {
            std::array<double, kLinkClassCount> score = log_prior;
            for (int f = 0; f < 5; ++f) {
              for (int c = 0; c < kLinkClassCount; ++c) {
                score[c] += log_cond[f][value_of(features[i], f)][c];
              }
            }
            return static_cast<LinkClass>(
                std::max_element(score.begin(), score.end()) - score.begin());
          });
  for (std::size_t i = 0; i < links.size(); ++i) {
    result.inference.set(links[i], rel_of_link_class(links[i], verdicts[i]));
  }

  // ---- Hidden-link prediction -------------------------------------------------
  // Collector peers have (near) complete neighbor sets; two of them sharing
  // many neighbors without an observed link between them very likely
  // interconnect privately or via an IXP the collectors miss.
  {
    // Neighbor sets from observed links.
    std::unordered_map<Asn, std::vector<Asn>> neighbors;
    for (const auto& link : links) {
      neighbors[link.a].push_back(link.b);
      neighbors[link.b].push_back(link.a);
    }
    for (auto& [asn, list] : neighbors) std::sort(list.begin(), list.end());

    const auto vp_asns = observed.vp_asns();
    for (std::size_t i = 0; i < vp_asns.size(); ++i) {
      for (std::size_t j = i + 1; j < vp_asns.size(); ++j) {
        const AsLink link{vp_asns[i], vp_asns[j]};
        if (link.a == link.b) continue;
        if (observed.link(link) != nullptr) continue;
        const auto ita = neighbors.find(vp_asns[i]);
        const auto itb = neighbors.find(vp_asns[j]);
        if (ita == neighbors.end() || itb == neighbors.end()) continue;
        std::vector<Asn> common;
        std::set_intersection(ita->second.begin(), ita->second.end(),
                              itb->second.begin(), itb->second.end(),
                              std::back_inserter(common));
        if (common.size() < params.hidden_min_common_neighbors) continue;
        const double unions = static_cast<double>(
            ita->second.size() + itb->second.size() - common.size());
        result.hidden_links.push_back(
            {link, static_cast<double>(common.size()) / unions});
      }
    }
    std::sort(result.hidden_links.begin(), result.hidden_links.end(),
              [](const HiddenLink& a, const HiddenLink& b) {
                if (a.confidence != b.confidence) {
                  return a.confidence > b.confidence;
                }
                return a.link < b.link;
              });
  }
  return result;
}

}  // namespace asrel::infer
