// Minimal multi-threaded HTTP/1.1 server over POSIX sockets.
//
// Concurrency model: one acceptor thread pushes connections onto a
// bounded queue; a fixed pool of worker threads pops them and serves
// keep-alive request loops. When the queue is full the acceptor sheds
// load with an immediate 503 instead of letting the backlog grow — the
// bound, not the kernel backlog, is the system's admission control.
// Per-request recv/send timeouts (SO_RCVTIMEO/SO_SNDTIMEO) bound how long
// a slow or dead client can pin a worker.
//
// /healthz and /statsz are answered by the server itself; everything else
// goes to the registered handler. Only GET is routed (anything else is
// 405), and a request that cannot be parsed is answered 400 and the
// connection closed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "serve/http_parser.hpp"

namespace asrel::serve {

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  [[nodiscard]] static HttpResponse json(int status, std::string body) {
    return HttpResponse{.status = status, .body = std::move(body)};
  }
};

struct HttpServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t malformed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t overload_rejected = 0;
};

struct HttpServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral; see HttpServer::port()
  int worker_threads = 4;
  int listen_backlog = 128;
  std::size_t max_pending_connections = 256;  ///< bounded accept queue
  int request_timeout_ms = 5000;
  std::size_t max_request_bytes = 16 * 1024;
  /// Extra JSON object spliced into /statsz under "app" (e.g. cache hit
  /// rates). Must return a valid JSON object or an empty string.
  std::function<std::string()> stats_supplement;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the acceptor + workers. Returns false and
  /// fills `*error` on socket errors (port in use, ...).
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// Stops accepting, shuts down in-flight connections, joins all
  /// threads. Idempotent; also called by the destructor.
  void stop();

  /// The bound port (useful with port = 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] HttpServerStats stats() const;

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  [[nodiscard]] HttpResponse dispatch(const HttpRequest& request);
  [[nodiscard]] std::string statsz_body() const;

  Handler handler_;
  HttpServerOptions options_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;

  std::mutex active_mutex_;
  std::unordered_set<int> active_fds_;

  // stats (relaxed atomics; read as a snapshot)
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_2xx_{0};
  std::atomic<std::uint64_t> responses_4xx_{0};
  std::atomic<std::uint64_t> responses_5xx_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> overload_rejected_{0};
};

}  // namespace asrel::serve
