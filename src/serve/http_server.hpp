// HTTP/1.1 server over POSIX sockets, with two front ends.
//
// Concurrency model: one acceptor thread pushes connections onto a
// bounded queue; when the queue is full the acceptor sheds load with an
// immediate 503 + Retry-After instead of letting the backlog grow — the
// bound, not the kernel backlog, is the system's admission control.
// Behind the queue sits one of two front ends selected by
// HttpServerOptions::serve_model:
//
//  - kEpoll (default): event loops over nonblocking sockets. Each loop
//    claims queued connections, parses pipelined requests out of a
//    per-connection carried-over buffer (serve/request_assembler), runs
//    handlers inline, and flushes batched responses with writev — the
//    syscall-amortized path that serves pipelined keep-alive bursts at
//    memory speed. Timeouts ride a timer wheel; the total per-request
//    deadline is checked lazily on data arrival, exactly like the
//    blocking path checks it before each recv.
//  - kThreadPool: the original blocking pool — workers pop connections
//    and serve keep-alive request loops with SO_RCVTIMEO/SO_SNDTIMEO
//    bounding each recv/send. Kept as the reference implementation; CI
//    asserts both front ends produce byte-identical responses.
//
// In both models a total per-request deadline bounds slow-trickle
// (slowloris-style) uploads that would otherwise reset the socket
// timeout byte by byte.
//
// Robustness: the accept loop retries EINTR/ECONNABORTED and survives fd
// exhaustion (EMFILE/ENFILE) via a reserved emergency fd — close it,
// accept the waiting connection, close that, reopen the reserve — instead
// of spinning. All socket syscalls route through the deterministic
// fault-injection layer (serve/fault_inject.*), which is zero-cost unless
// a chaos test arms it.
//
// Shutdown comes in two shapes: stop() aborts everything immediately;
// drain() stops accepting, lets in-flight connections finish within a
// deadline, force-closes stragglers, and reports drained/aborted counts.
//
// /healthz, /statsz, /metricsz (Prometheus text exposition), /tracez
// (recent spans as JSON), /logz (recent structured log events), and
// /slowz (K slowest requests per route) are answered by the server
// itself; every dispatched response echoes its request id as
// X-Request-Id, the key that joins those views; GET and POST
// are routed to the registered handler (which owns method policy for its
// routes — the bundled AsrelService 405s POST everywhere except
// /reloadz); other methods are 405. A request that cannot be parsed is
// answered 400 and the connection closed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/slow_ring.hpp"
#include "serve/http_parser.hpp"

namespace asrel::serve {

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (e.g. Retry-After), rendered verbatim.
  std::vector<std::pair<std::string, std::string>> headers;

  [[nodiscard]] static HttpResponse json(int status, std::string body) {
    HttpResponse response;
    response.status = status;
    response.body = std::move(body);
    return response;
  }
};

struct HttpServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t malformed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t overload_rejected = 0;   ///< shed with 503 at admission
  std::uint64_t accept_retried = 0;      ///< EINTR/ECONNABORTED retries
  std::uint64_t emfile_recoveries = 0;   ///< fd-exhaustion emergency path
  std::uint64_t drained = 0;             ///< connections finished in drain
  std::uint64_t aborted = 0;             ///< connections force-closed
  std::uint64_t deadline_exceeded = 0;   ///< requests over the deadline
  std::uint64_t bytes_read = 0;          ///< request bytes received
  std::uint64_t bytes_written = 0;       ///< response bytes sent
};

/// Outcome of a graceful drain (subset of stats, for the caller's log).
struct DrainReport {
  std::uint64_t drained = 0;
  std::uint64_t aborted = 0;
};

/// Which front end serves connections behind the admission queue.
enum class ServeModel {
  kEpoll,       ///< nonblocking event loops, pipelined parse, writev flush
  kThreadPool,  ///< blocking workers, one connection per thread at a time
};

struct HttpServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral; see HttpServer::port()
  ServeModel serve_model = ServeModel::kEpoll;
  /// kThreadPool: blocking worker count. kEpoll: event-loop count.
  int worker_threads = 4;
  int listen_backlog = 128;
  std::size_t max_pending_connections = 256;  ///< bounded accept queue
  int request_timeout_ms = 5000;   ///< per-recv/send socket timeout
  int request_deadline_ms = 10000; ///< total wall clock per request
  int drain_deadline_ms = 5000;    ///< grace period for drain()
  int retry_after_hint_s = 1;      ///< Retry-After on shed 503s
  std::size_t max_request_bytes = 16 * 1024;
  /// Extra JSON object spliced into /statsz under "app" (e.g. cache hit
  /// rates). Must return a valid JSON object or an empty string.
  std::function<std::string()> stats_supplement;
  /// Routes (beyond the built-in /healthz /statsz /metricsz /tracez) that
  /// get their own request-latency histogram. Cardinality rule: this is a
  /// closed set fixed at construction — any other path is folded into the
  /// "other" series, so client-controlled paths can never mint metrics.
  std::vector<std::string> metrics_routes;
  /// Extra scrape-time metrics appended to /metricsz (e.g. cache stats of
  /// the current snapshot epoch).
  std::function<void(std::vector<obs::MetricSnapshot>&)> metrics_supplement;
  /// Default span count served by /tracez (override per request with ?n=).
  std::size_t tracez_default_spans = 256;
  /// Default event count served by /logz (override per request with ?n=).
  std::size_t logz_default_events = 256;
  /// Slowest requests retained per route for /slowz.
  std::size_t slow_ring_capacity = 8;
  /// Supplier of the snapshot epoch currently being served, stamped into
  /// /slowz entries so an outlier can be tied to the epoch that answered
  /// it. Must be thread-safe; unset reads as epoch 0.
  std::function<std::uint64_t()> epoch_supplier;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the acceptor + workers. Returns false and
  /// fills `*error` on socket errors (port in use, ...).
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// Hard stop: closes everything immediately, joins all threads.
  /// Idempotent; also called by the destructor.
  void stop();

  /// Graceful stop: stops accepting, serves queued + in-flight
  /// connections to completion within options.drain_deadline_ms, then
  /// force-closes the rest. Idempotent with stop(); returns how many
  /// connections finished vs were aborted.
  DrainReport drain();

  /// The bound port (useful with port = 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] HttpServerStats stats() const;

  /// Routes that blew their deadline, with counts; "(read)" covers
  /// requests that timed out before the route was known.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  deadline_exceeded_by_route() const;

  /// This server's own registry (request counters, per-route latency).
  /// /metricsz merges it with MetricsRegistry::global(); exposing it lets
  /// tests scrape without sockets.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }

  /// Per-request facts only the transport knows, fed to observe_request
  /// alongside the timing: the resolved id, how many bytes the response
  /// put on the wire, and how many flush stalls (EAGAIN on write) the
  /// epoll path ate while getting them there.
  struct RequestObservation {
    std::uint64_t request_id = 0;
    std::uint64_t response_bytes = 0;
    std::uint32_t flush_stalls = 0;
  };

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd, std::uint64_t connection_sequence);
  // ---- epoll front end (serve/epoll_server.cpp) ----
  /// Per-loop state: epoll fd, wake eventfd, connections, timer wheel.
  /// Defined in epoll_server.cpp; held by shared_ptr so this header stays
  /// free of epoll details.
  struct EpollLoop;
  [[nodiscard]] bool epoll_start(std::string* error);
  void epoll_loop(EpollLoop& loop);
  /// Kicks every event loop's eventfd (new queued connection, stop, drain).
  void wake_loops();
  void shed_connection(int fd);
  void note_deadline_exceeded(const std::string& route,
                              std::uint64_t request_id = 0);
  void observe_request(const std::string& path, std::uint64_t duration_us,
                       std::uint64_t trace_start_us, bool tracing,
                       const RequestObservation& observation);
  [[nodiscard]] HttpResponse dispatch(const HttpRequest& request);
  [[nodiscard]] std::string statsz_body() const;
  [[nodiscard]] std::string metricsz_body() const;
  [[nodiscard]] std::string tracez_body(const HttpRequest& request) const;
  [[nodiscard]] std::string logz_body(const HttpRequest& request) const;
  [[nodiscard]] std::string slowz_body() const;
  void join_all();

  Handler handler_;
  HttpServerOptions options_;

  int listen_fd_ = -1;
  int reserve_fd_ = -1;  ///< emergency fd released to survive EMFILE
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;  ///< pool workers or event loops
  std::vector<std::shared_ptr<EpollLoop>> loops_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  /// Accepted, not-yet-claimed connections. The sequence number (accept
  /// order) seeds the connection's request-id stream, making ids a pure
  /// function of (server, accept order, request index) in both models.
  struct PendingConn {
    int fd = -1;
    std::uint64_t sequence = 0;
  };
  std::deque<PendingConn> pending_;
  std::uint64_t connection_sequence_ = 0;  ///< acceptor thread only

  mutable std::mutex active_mutex_;
  std::unordered_set<int> active_fds_;
  std::unordered_set<int> aborted_fds_;  ///< force-closed during drain

  mutable std::mutex deadline_mutex_;
  std::unordered_map<std::string, std::uint64_t> deadline_by_route_;

  // Stats live in the per-server registry; these are handles bound once in
  // the constructor (writes are striped relaxed atomics, reads sum them).
  obs::MetricsRegistry metrics_;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* responses_2xx_ = nullptr;
  obs::Counter* responses_4xx_ = nullptr;
  obs::Counter* responses_5xx_ = nullptr;
  obs::Counter* malformed_ = nullptr;
  obs::Counter* timeouts_ = nullptr;
  obs::Counter* overload_rejected_ = nullptr;
  obs::Counter* accept_retried_ = nullptr;
  obs::Counter* emfile_recoveries_ = nullptr;
  obs::Counter* drained_ = nullptr;
  obs::Counter* aborted_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;
  obs::Counter* bytes_read_ = nullptr;
  obs::Counter* bytes_written_ = nullptr;
  /// Per-route instruments, bound once at construction so the request
  /// path does no string building (the span name is preassembled).
  struct RouteObs {
    obs::Histogram* latency = nullptr;
    std::string span_name;  ///< "http <route>"
    std::unique_ptr<obs::SlowRing> slow;  ///< K slowest for /slowz
  };
  std::unordered_map<std::string, RouteObs> route_latency_;
  RouteObs other_route_;  ///< fold-in series for unknown paths
  // Epoll-loop internals (populated only by the epoll front end; present
  // in every exposition so scrapes have a stable schema).
  obs::Histogram* epoll_ready_fds_ = nullptr;
  obs::Histogram* epoll_iteration_us_ = nullptr;
  obs::Counter* timer_arms_ = nullptr;
  obs::Counter* timer_lazy_cancels_ = nullptr;
  obs::Counter* timer_fires_ = nullptr;
  obs::Counter* timer_cascades_ = nullptr;
  obs::Counter* timer_late_fires_ = nullptr;
};

}  // namespace asrel::serve
