#include "serve/query_engine.hpp"

#include <algorithm>
#include <functional>

#include "serve/json.hpp"

namespace asrel::serve {

namespace {

constexpr std::string_view kUnknownClass = "?";

void append_coverage_json(JsonWriter& json, std::string_view name,
                          const eval::CoverageReport& report) {
  json.begin_object();
  json.field("report", name);
  json.field("total_inferred", report.total_inferred);
  json.field("total_validated", report.total_validated);
  json.key("rows").begin_array();
  for (const auto& row : report.rows) {
    json.begin_object();
    json.field("class", row.name);
    json.field("inferred_links", row.inferred_links);
    json.field("validated_links", row.validated_links);
    json.field("share", row.share);
    json.field("coverage", row.coverage);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void append_class_metrics_json(JsonWriter& json,
                               const eval::ClassMetrics& metrics) {
  json.begin_object();
  json.field("class", metrics.name);
  json.key("p2p").begin_object();
  json.field("ppv", metrics.p2p.ppv());
  json.field("tpr", metrics.p2p.tpr());
  json.field("links", metrics.p2p_links);
  json.end_object();
  json.key("p2c").begin_object();
  json.field("ppv", metrics.p2c.ppv());
  json.field("tpr", metrics.p2c.tpr());
  json.field("links", metrics.p2c_links);
  json.end_object();
  json.field("mcc", metrics.mcc);
  json.field("orientation_accuracy", metrics.orientation_accuracy);
  json.end_object();
}

}  // namespace

QueryEngine::QueryEngine(io::Snapshot snapshot, QueryEngineOptions options)
    : snap_(std::move(snapshot)),
      options_(options),
      cache_(options.cache_shards, options.cache_capacity_per_shard) {
  as_index_.reserve(snap_.ases.size());
  for (std::uint32_t i = 0; i < snap_.ases.size(); ++i) {
    as_index_.emplace(snap_.ases[i].asn, i);
  }
  as_extra_.resize(snap_.ases.size());

  const auto extra_of = [&](asn::Asn asn) -> AsExtra* {
    const auto it = as_index_.find(asn);
    return it == as_index_.end() ? nullptr : &as_extra_[it->second];
  };

  edge_index_.reserve(snap_.edges.size());
  for (std::uint32_t i = 0; i < snap_.edges.size(); ++i) {
    const auto& edge = snap_.edges[i];
    edge_index_.emplace(val::AsLink{edge.a, edge.b}, i);
    AsExtra* a = extra_of(edge.a);
    AsExtra* b = extra_of(edge.b);
    switch (edge.rel) {
      case topo::RelType::kP2C:
        if (a != nullptr) ++a->customers;
        if (b != nullptr) ++b->providers;
        break;
      case topo::RelType::kP2P:
        if (a != nullptr) ++a->peers;
        if (b != nullptr) ++b->peers;
        break;
      case topo::RelType::kS2S:
        if (a != nullptr) ++a->siblings;
        if (b != nullptr) ++b->siblings;
        break;
    }
  }

  link_index_.reserve(snap_.links.size());
  for (std::uint32_t i = 0; i < snap_.links.size(); ++i) {
    const auto& tag = snap_.links[i];
    link_index_.emplace(tag.link, i);
    if (AsExtra* a = extra_of(tag.link.a)) ++a->observed_links;
    if (AsExtra* b = extra_of(tag.link.b)) ++b->observed_links;
  }

  validation_index_.reserve(snap_.validation.size());
  for (std::uint32_t i = 0; i < snap_.validation.size(); ++i) {
    const auto& label = snap_.validation[i];
    validation_index_.emplace(label.link, i);
    if (AsExtra* a = extra_of(label.link.a)) ++a->validated_links;
    if (AsExtra* b = extra_of(label.link.b)) ++b->validated_links;
  }

  verdict_index_.resize(snap_.algorithms.size());
  for (std::size_t algo = 0; algo < snap_.algorithms.size(); ++algo) {
    const auto& labels = snap_.algorithms[algo].labels;
    verdict_index_[algo].reserve(labels.size());
    for (std::uint32_t i = 0; i < labels.size(); ++i) {
      verdict_index_[algo].emplace(labels[i].link, i);
    }
  }
}

RelAnswer QueryEngine::rel(asn::Asn a, asn::Asn b) const {
  RelAnswer answer;
  answer.link = val::AsLink{a, b};

  if (const auto it = edge_index_.find(answer.link);
      it != edge_index_.end()) {
    const auto& edge = snap_.edges[it->second];
    answer.in_graph = true;
    answer.truth_rel = edge.rel;
    if (edge.rel == topo::RelType::kP2C) answer.truth_provider = edge.a;
    answer.scope = edge.scope;
    answer.scope_via_community = edge.scope_via_community;
    answer.misdocumented = edge.misdocumented;
    answer.hybrid_rel = edge.hybrid_rel;
  }

  if (const auto it = link_index_.find(answer.link);
      it != link_index_.end()) {
    const auto& tag = snap_.links[it->second];
    answer.observed = true;
    answer.regional_class = snap_.class_names[tag.regional_class];
    answer.topological_class = snap_.class_names[tag.topological_class];
  }

  for (std::size_t algo = 0; algo < snap_.algorithms.size(); ++algo) {
    const auto it = verdict_index_[algo].find(answer.link);
    if (it == verdict_index_[algo].end()) continue;
    const auto& label = snap_.algorithms[algo].labels[it->second];
    answer.verdicts.push_back(RelAnswer::Verdict{
        .algorithm = snap_.algorithms[algo].name,
        .rel = label.rel,
        .provider = label.provider,
    });
  }

  if (const auto it = validation_index_.find(answer.link);
      it != validation_index_.end()) {
    const auto& label = snap_.validation[it->second];
    answer.validated = true;
    answer.validated_rel = label.rel;
    answer.validated_provider = label.provider;
  }

  return answer;
}

std::optional<AsSummary> QueryEngine::as_summary(asn::Asn asn) const {
  const auto it = as_index_.find(asn);
  if (it == as_index_.end()) return std::nullopt;
  const auto& as = snap_.ases[it->second];
  const auto& extra = as_extra_[it->second];
  AsSummary summary;
  summary.asn = as.asn;
  summary.region = as.attrs.region;
  summary.country = as.attrs.country;
  summary.tier = as.attrs.tier;
  summary.stub_kind = as.attrs.stub_kind;
  summary.hypergiant = as.attrs.hypergiant;
  summary.transit_degree = as.transit_degree;
  summary.node_degree = as.node_degree;
  summary.cone_size = as.cone_size;
  summary.providers = extra.providers;
  summary.customers = extra.customers;
  summary.peers = extra.peers;
  summary.siblings = extra.siblings;
  summary.observed_links = extra.observed_links;
  summary.validated_links = extra.validated_links;
  return summary;
}

std::vector<val::AsLink> QueryEngine::sample_links(std::size_t limit) const {
  std::vector<val::AsLink> out;
  if (snap_.links.empty() || limit == 0) return out;
  const std::size_t take = std::min(limit, snap_.links.size());
  const std::size_t stride = snap_.links.size() / take;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(snap_.links[i * stride].link);
  }
  return out;
}

eval::CoverageReport QueryEngine::coverage(bool regional) const {
  std::vector<val::AsLink> inferred;
  inferred.reserve(snap_.links.size());
  for (const auto& tag : snap_.links) inferred.push_back(tag.link);
  const auto class_of = [&](const val::AsLink& link) -> std::string {
    const auto it = link_index_.find(link);
    if (it == link_index_.end()) return std::string{kUnknownClass};
    const auto& tag = snap_.links[it->second];
    return snap_.class_names[regional ? tag.regional_class
                                      : tag.topological_class];
  };
  return eval::coverage_by_class(inferred, snap_.validation, class_of);
}

eval::CoverageReport QueryEngine::regional_coverage() const {
  return coverage(true);
}

eval::CoverageReport QueryEngine::topological_coverage() const {
  return coverage(false);
}

std::optional<eval::ValidationTable> QueryEngine::validation_table(
    std::string_view algorithm) const {
  const io::SnapshotAlgorithm* found = nullptr;
  for (const auto& algo : snap_.algorithms) {
    if (algo.name == algorithm) {
      found = &algo;
      break;
    }
  }
  if (found == nullptr) return std::nullopt;

  infer::Inference inference;
  for (const auto& label : found->labels) {
    inference.set(label.link,
                  infer::InferredRel{.rel = label.rel,
                                     .provider = label.provider});
  }
  const auto pairs = eval::make_eval_pairs(snap_.validation, inference);

  const auto class_of = [&](bool regional) {
    return [this, regional](const val::AsLink& link) -> std::string {
      const auto it = link_index_.find(link);
      if (it == link_index_.end()) return std::string{kUnknownClass};
      const auto& tag = snap_.links[it->second];
      return snap_.class_names[regional ? tag.regional_class
                                        : tag.topological_class];
    };
  };

  // Mirrors BiasAudit::validation_table: Total° row, then the regional
  // rows, then the topological rows, each filtered by min_links.
  eval::ValidationTable table;
  table.total = eval::compute_class_metrics(pairs, "Total°");
  const auto regional = eval::build_validation_table(
      pairs, class_of(true), options_.table_min_links);
  const auto topological = eval::build_validation_table(
      pairs, class_of(false), options_.table_min_links);
  table.rows = regional.rows;
  table.rows.insert(table.rows.end(), topological.rows.begin(),
                    topological.rows.end());
  return table;
}

std::vector<std::string_view> QueryEngine::algorithm_names() const {
  std::vector<std::string_view> names;
  names.reserve(snap_.algorithms.size());
  for (const auto& algo : snap_.algorithms) names.push_back(algo.name);
  return names;
}

std::shared_ptr<const std::string> QueryEngine::build_report(
    const std::string& key) const {
  JsonWriter json;
  if (key == "regional" || key == "topological") {
    append_coverage_json(json, key,
                         key == "regional" ? regional_coverage()
                                           : topological_coverage());
    return std::make_shared<const std::string>(std::move(json).str());
  }
  if (key.starts_with("table:")) {
    const std::string_view algorithm = std::string_view{key}.substr(6);
    const auto table = validation_table(algorithm);
    if (!table) return nullptr;
    json.begin_object();
    json.field("report", "validation-table");
    json.field("algorithm", algorithm);
    json.field("min_links", options_.table_min_links);
    json.key("total");
    append_class_metrics_json(json, table->total);
    json.key("rows").begin_array();
    for (const auto& row : table->rows) {
      append_class_metrics_json(json, row);
    }
    json.end_array();
    json.end_object();
    return std::make_shared<const std::string>(std::move(json).str());
  }
  return nullptr;
}

std::shared_ptr<const std::string> QueryEngine::report_json(
    const std::string& key) const {
  // Validate the key up front so unknown keys neither poison the cache
  // nor skew its hit/miss counters.
  bool valid = key == "regional" || key == "topological";
  if (!valid && key.starts_with("table:")) {
    const std::string_view algorithm = std::string_view{key}.substr(6);
    for (const auto& algo : snap_.algorithms) {
      if (algo.name == algorithm) {
        valid = true;
        break;
      }
    }
  }
  if (!valid) return nullptr;
  return cache_.get_or_compute(key, [&] { return build_report(key); });
}

}  // namespace asrel::serve
