#include "serve/query_engine.hpp"

#include <algorithm>
#include <functional>

#include "serve/json.hpp"

namespace asrel::serve {

namespace {

constexpr std::string_view kUnknownClass = "?";

void append_coverage_json(JsonWriter& json, std::string_view name,
                          const eval::CoverageReport& report) {
  json.begin_object();
  json.field("report", name);
  json.field("total_inferred", report.total_inferred);
  json.field("total_validated", report.total_validated);
  json.key("rows").begin_array();
  for (const auto& row : report.rows) {
    json.begin_object();
    json.field("class", row.name);
    json.field("inferred_links", row.inferred_links);
    json.field("validated_links", row.validated_links);
    json.field("share", row.share);
    json.field("coverage", row.coverage);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void append_class_metrics_json(JsonWriter& json,
                               const eval::ClassMetrics& metrics) {
  json.begin_object();
  json.field("class", metrics.name);
  json.key("p2p").begin_object();
  json.field("ppv", metrics.p2p.ppv());
  json.field("tpr", metrics.p2p.tpr());
  json.field("links", metrics.p2p_links);
  json.end_object();
  json.key("p2c").begin_object();
  json.field("ppv", metrics.p2c.ppv());
  json.field("tpr", metrics.p2c.tpr());
  json.field("links", metrics.p2c_links);
  json.end_object();
  json.field("mcc", metrics.mcc);
  json.field("orientation_accuracy", metrics.orientation_accuracy);
  json.end_object();
}

}  // namespace

QueryEngine::QueryEngine(io::Snapshot snapshot, QueryEngineOptions options)
    : snap_(std::move(snapshot)),
      options_(options),
      cache_(options.cache_shards, options.cache_capacity_per_shard),
      rel_cache_(options.rel_cache_shards,
                 options.rel_cache_capacity_per_shard) {
  meta_ = snap_.meta;
  build_indexes();
  // Snapshot mode is fully indexed up front; flat mode reuses
  // inflate_once_ to run the same build lazily.
  std::call_once(inflate_once_, [] {});
}

QueryEngine::QueryEngine(std::shared_ptr<const io::FlatView> flat,
                         QueryEngineOptions options)
    : flat_(std::move(flat)),
      options_(options),
      cache_(options.cache_shards, options.cache_capacity_per_shard),
      rel_cache_(options.rel_cache_shards,
                 options.rel_cache_capacity_per_shard) {
  const io::flat::Header& header = flat_->header();
  meta_.as_count = header.as_count;
  meta_.seed = header.seed;
  meta_.scheme_seed = header.scheme_seed;
  meta_.epoch = header.epoch;
  meta_.built_unix_ms = header.built_unix_ms;
}

void QueryEngine::ensure_inflated() const {
  std::call_once(inflate_once_, [this] {
    snap_ = flat_->to_snapshot();
    build_indexes();
  });
}

const io::Snapshot& QueryEngine::snapshot() const {
  if (flat_ != nullptr) ensure_inflated();
  return snap_;
}

void QueryEngine::build_indexes() const {
  as_index_.reserve(snap_.ases.size());
  for (std::uint32_t i = 0; i < snap_.ases.size(); ++i) {
    as_index_.emplace(snap_.ases[i].asn, i);
  }
  as_extra_.resize(snap_.ases.size());

  const auto extra_of = [&](asn::Asn asn) -> AsExtra* {
    const auto it = as_index_.find(asn);
    return it == as_index_.end() ? nullptr : &as_extra_[it->second];
  };

  edge_index_.reserve(snap_.edges.size());
  for (std::uint32_t i = 0; i < snap_.edges.size(); ++i) {
    const auto& edge = snap_.edges[i];
    edge_index_.emplace(val::AsLink{edge.a, edge.b}, i);
    AsExtra* a = extra_of(edge.a);
    AsExtra* b = extra_of(edge.b);
    switch (edge.rel) {
      case topo::RelType::kP2C:
        if (a != nullptr) ++a->customers;
        if (b != nullptr) ++b->providers;
        break;
      case topo::RelType::kP2P:
        if (a != nullptr) ++a->peers;
        if (b != nullptr) ++b->peers;
        break;
      case topo::RelType::kS2S:
        if (a != nullptr) ++a->siblings;
        if (b != nullptr) ++b->siblings;
        break;
    }
  }

  link_index_.reserve(snap_.links.size());
  for (std::uint32_t i = 0; i < snap_.links.size(); ++i) {
    const auto& tag = snap_.links[i];
    link_index_.emplace(tag.link, i);
    if (AsExtra* a = extra_of(tag.link.a)) ++a->observed_links;
    if (AsExtra* b = extra_of(tag.link.b)) ++b->observed_links;
  }

  validation_index_.reserve(snap_.validation.size());
  for (std::uint32_t i = 0; i < snap_.validation.size(); ++i) {
    const auto& label = snap_.validation[i];
    validation_index_.emplace(label.link, i);
    if (AsExtra* a = extra_of(label.link.a)) ++a->validated_links;
    if (AsExtra* b = extra_of(label.link.b)) ++b->validated_links;
  }

  verdict_index_.resize(snap_.algorithms.size());
  for (std::size_t algo = 0; algo < snap_.algorithms.size(); ++algo) {
    const auto& labels = snap_.algorithms[algo].labels;
    verdict_index_[algo].reserve(labels.size());
    for (std::uint32_t i = 0; i < labels.size(); ++i) {
      verdict_index_[algo].emplace(labels[i].link, i);
    }
  }
}

namespace {

/// Flat-mode rel(): every probe reads the mapped image directly; the
/// returned string_views point into it (the engine pins the view).
RelAnswer flat_rel(const io::FlatView& flat, asn::Asn a, asn::Asn b) {
  RelAnswer answer;
  answer.link = val::AsLink{a, b};
  const std::uint32_t qa = a.value();
  const std::uint32_t qb = b.value();

  if (const std::uint32_t i = flat.find_edge(qa, qb);
      i != io::FlatView::npos) {
    const io::flat::Edge& edge = flat.edges()[i];
    answer.in_graph = true;
    answer.truth_rel = static_cast<topo::RelType>(edge.rel);
    if (answer.truth_rel == topo::RelType::kP2C) {
      answer.truth_provider = asn::Asn{edge.a};
    }
    answer.scope = static_cast<topo::ExportScope>(edge.scope);
    answer.scope_via_community =
        edge.flags & io::flat::kEdgeFlagScopeCommunity;
    answer.misdocumented = edge.flags & io::flat::kEdgeFlagMisdocumented;
    if (edge.flags & io::flat::kEdgeFlagHybrid) {
      answer.hybrid_rel = static_cast<topo::RelType>(edge.hybrid);
    }
  }

  if (const std::uint32_t i = flat.find_link(qa, qb);
      i != io::FlatView::npos) {
    const io::flat::LinkTag& tag = flat.links()[i];
    answer.observed = true;
    answer.regional_class = flat.class_name(tag.regional_class);
    answer.topological_class = flat.class_name(tag.topological_class);
  }

  const std::uint32_t algorithms = flat.header().n_algorithms;
  for (std::uint32_t algo = 0; algo < algorithms; ++algo) {
    const std::uint32_t i = flat.find_verdict(algo, qa, qb);
    if (i == io::FlatView::npos) continue;
    const io::flat::Label& label =
        flat.algo_labels(flat.algorithms()[algo])[i];
    answer.verdicts.push_back(RelAnswer::Verdict{
        .algorithm = flat.algorithm_name(algo),
        .rel = static_cast<topo::RelType>(label.rel),
        .provider = asn::Asn{label.provider},
    });
  }

  if (const std::uint32_t i = flat.find_validation(qa, qb);
      i != io::FlatView::npos) {
    const io::flat::Label& label = flat.validation()[i];
    answer.validated = true;
    answer.validated_rel = static_cast<topo::RelType>(label.rel);
    answer.validated_provider = asn::Asn{label.provider};
  }

  return answer;
}

std::optional<AsSummary> flat_as_summary(const io::FlatView& flat,
                                         asn::Asn asn) {
  const std::uint32_t idx = flat.find_as(asn.value());
  if (idx == io::FlatView::npos) return std::nullopt;
  const io::flat::As& as = flat.ases()[idx];
  AsSummary summary;
  summary.asn = asn;
  summary.region = static_cast<rir::Region>(as.region);
  summary.country = flat.string_at(as.country);
  summary.tier = static_cast<topo::Tier>(as.tier);
  summary.stub_kind = static_cast<topo::StubKind>(as.stub_kind);
  summary.hypergiant = as.flags & io::flat::kAsFlagHypergiant;
  summary.transit_degree = as.transit_degree;
  summary.node_degree = as.node_degree;
  summary.cone_size = as.cone_size;
  // Neighbor-role counts come from the CSR row: O(degree) over mapped
  // memory, same classification as the eager index build.
  const auto [begin, end] = flat.neighbors(idx);
  const std::uint32_t n_edges = flat.header().n_edges;
  for (const std::uint32_t* it = begin; it != end; ++it) {
    if (*it >= n_edges) continue;  // corrupt entry under structural open
    const io::flat::Edge& edge = flat.edges()[*it];
    switch (static_cast<topo::RelType>(edge.rel)) {
      case topo::RelType::kP2C:
        if (edge.a == asn.value()) {
          ++summary.customers;
        } else {
          ++summary.providers;
        }
        break;
      case topo::RelType::kP2P:
        ++summary.peers;
        break;
      case topo::RelType::kS2S:
        ++summary.siblings;
        break;
    }
  }
  summary.observed_links = as.observed_links;
  summary.validated_links = as.validated_links;
  return summary;
}

}  // namespace

RelAnswer QueryEngine::rel(asn::Asn a, asn::Asn b) const {
  if (flat_ != nullptr) return flat_rel(*flat_, a, b);
  RelAnswer answer;
  answer.link = val::AsLink{a, b};

  if (const auto it = edge_index_.find(answer.link);
      it != edge_index_.end()) {
    const auto& edge = snap_.edges[it->second];
    answer.in_graph = true;
    answer.truth_rel = edge.rel;
    if (edge.rel == topo::RelType::kP2C) answer.truth_provider = edge.a;
    answer.scope = edge.scope;
    answer.scope_via_community = edge.scope_via_community;
    answer.misdocumented = edge.misdocumented;
    answer.hybrid_rel = edge.hybrid_rel;
  }

  if (const auto it = link_index_.find(answer.link);
      it != link_index_.end()) {
    const auto& tag = snap_.links[it->second];
    answer.observed = true;
    answer.regional_class = snap_.class_names[tag.regional_class];
    answer.topological_class = snap_.class_names[tag.topological_class];
  }

  for (std::size_t algo = 0; algo < snap_.algorithms.size(); ++algo) {
    const auto it = verdict_index_[algo].find(answer.link);
    if (it == verdict_index_[algo].end()) continue;
    const auto& label = snap_.algorithms[algo].labels[it->second];
    answer.verdicts.push_back(RelAnswer::Verdict{
        .algorithm = snap_.algorithms[algo].name,
        .rel = label.rel,
        .provider = label.provider,
    });
  }

  if (const auto it = validation_index_.find(answer.link);
      it != validation_index_.end()) {
    const auto& label = snap_.validation[it->second];
    answer.validated = true;
    answer.validated_rel = label.rel;
    answer.validated_provider = label.provider;
  }

  return answer;
}

std::optional<AsSummary> QueryEngine::as_summary(asn::Asn asn) const {
  if (flat_ != nullptr) return flat_as_summary(*flat_, asn);
  const auto it = as_index_.find(asn);
  if (it == as_index_.end()) return std::nullopt;
  const auto& as = snap_.ases[it->second];
  const auto& extra = as_extra_[it->second];
  AsSummary summary;
  summary.asn = as.asn;
  summary.region = as.attrs.region;
  summary.country = as.attrs.country;
  summary.tier = as.attrs.tier;
  summary.stub_kind = as.attrs.stub_kind;
  summary.hypergiant = as.attrs.hypergiant;
  summary.transit_degree = as.transit_degree;
  summary.node_degree = as.node_degree;
  summary.cone_size = as.cone_size;
  summary.providers = extra.providers;
  summary.customers = extra.customers;
  summary.peers = extra.peers;
  summary.siblings = extra.siblings;
  summary.observed_links = extra.observed_links;
  summary.validated_links = extra.validated_links;
  return summary;
}

std::vector<val::AsLink> QueryEngine::sample_links(std::size_t limit) const {
  std::vector<val::AsLink> out;
  const std::size_t count = num_links();
  if (count == 0 || limit == 0) return out;
  const std::size_t take = std::min(limit, count);
  const std::size_t stride = count / take;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    if (flat_ != nullptr) {
      const io::flat::LinkTag& tag = flat_->links()[i * stride];
      out.push_back(val::AsLink{asn::Asn{tag.a}, asn::Asn{tag.b}});
    } else {
      out.push_back(snap_.links[i * stride].link);
    }
  }
  return out;
}

std::size_t QueryEngine::num_ases() const {
  return flat_ != nullptr ? flat_->header().n_ases : snap_.ases.size();
}

std::size_t QueryEngine::num_edges() const {
  return flat_ != nullptr ? flat_->header().n_edges : snap_.edges.size();
}

std::size_t QueryEngine::num_links() const {
  return flat_ != nullptr ? flat_->header().n_links : snap_.links.size();
}

std::size_t QueryEngine::num_validation() const {
  return flat_ != nullptr ? flat_->header().n_validation
                          : snap_.validation.size();
}

eval::CoverageReport QueryEngine::coverage(bool regional) const {
  ensure_inflated();
  std::vector<val::AsLink> inferred;
  inferred.reserve(snap_.links.size());
  for (const auto& tag : snap_.links) inferred.push_back(tag.link);
  const auto class_of = [&](const val::AsLink& link) -> std::string {
    const auto it = link_index_.find(link);
    if (it == link_index_.end()) return std::string{kUnknownClass};
    const auto& tag = snap_.links[it->second];
    return snap_.class_names[regional ? tag.regional_class
                                      : tag.topological_class];
  };
  return eval::coverage_by_class(inferred, snap_.validation, class_of);
}

eval::CoverageReport QueryEngine::regional_coverage() const {
  return coverage(true);
}

eval::CoverageReport QueryEngine::topological_coverage() const {
  return coverage(false);
}

std::optional<eval::ValidationTable> QueryEngine::validation_table(
    std::string_view algorithm) const {
  ensure_inflated();
  const io::SnapshotAlgorithm* found = nullptr;
  for (const auto& algo : snap_.algorithms) {
    if (algo.name == algorithm) {
      found = &algo;
      break;
    }
  }
  if (found == nullptr) return std::nullopt;

  infer::Inference inference;
  for (const auto& label : found->labels) {
    inference.set(label.link,
                  infer::InferredRel{.rel = label.rel,
                                     .provider = label.provider});
  }
  const auto pairs = eval::make_eval_pairs(snap_.validation, inference);

  const auto class_of = [&](bool regional) {
    return [this, regional](const val::AsLink& link) -> std::string {
      const auto it = link_index_.find(link);
      if (it == link_index_.end()) return std::string{kUnknownClass};
      const auto& tag = snap_.links[it->second];
      return snap_.class_names[regional ? tag.regional_class
                                        : tag.topological_class];
    };
  };

  // Mirrors BiasAudit::validation_table: Total° row, then the regional
  // rows, then the topological rows, each filtered by min_links.
  eval::ValidationTable table;
  table.total = eval::compute_class_metrics(pairs, "Total°");
  const auto regional = eval::build_validation_table(
      pairs, class_of(true), options_.table_min_links);
  const auto topological = eval::build_validation_table(
      pairs, class_of(false), options_.table_min_links);
  table.rows = regional.rows;
  table.rows.insert(table.rows.end(), topological.rows.begin(),
                    topological.rows.end());
  return table;
}

std::vector<std::string_view> QueryEngine::algorithm_names() const {
  std::vector<std::string_view> names;
  if (flat_ != nullptr) {
    const std::uint32_t count = flat_->header().n_algorithms;
    names.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      names.push_back(flat_->algorithm_name(i));
    }
    return names;
  }
  names.reserve(snap_.algorithms.size());
  for (const auto& algo : snap_.algorithms) names.push_back(algo.name);
  return names;
}

std::shared_ptr<const std::string> QueryEngine::build_report(
    const std::string& key) const {
  JsonWriter json;
  if (key == "regional" || key == "topological") {
    append_coverage_json(json, key,
                         key == "regional" ? regional_coverage()
                                           : topological_coverage());
    return std::make_shared<const std::string>(std::move(json).str());
  }
  if (key.starts_with("table:")) {
    const std::string_view algorithm = std::string_view{key}.substr(6);
    const auto table = validation_table(algorithm);
    if (!table) return nullptr;
    json.begin_object();
    json.field("report", "validation-table");
    json.field("algorithm", algorithm);
    json.field("min_links", options_.table_min_links);
    json.key("total");
    append_class_metrics_json(json, table->total);
    json.key("rows").begin_array();
    for (const auto& row : table->rows) {
      append_class_metrics_json(json, row);
    }
    json.end_array();
    json.end_object();
    return std::make_shared<const std::string>(std::move(json).str());
  }
  return nullptr;
}

namespace {

void append_rel_side_json(JsonWriter& json, topo::RelType rel,
                          asn::Asn provider) {
  json.field("rel", to_string(rel));
  if (rel == topo::RelType::kP2C) {
    json.field("provider", std::uint64_t{provider.value()});
  }
}

}  // namespace

std::shared_ptr<const std::string> QueryEngine::rel_json(asn::Asn a,
                                                         asn::Asn b) const {
  const val::AsLink link{a, b};
  const std::uint64_t key =
      (std::uint64_t{link.a.value()} << 32) | link.b.value();
  return rel_cache_.get_or_compute(key, [&] {
    const RelAnswer answer = rel(a, b);
    JsonWriter json;
    json.begin_object();
    json.field("a", std::uint64_t{answer.link.a.value()});
    json.field("b", std::uint64_t{answer.link.b.value()});
    json.field("found", answer.known());
    if (answer.in_graph) {
      json.key("ground_truth").begin_object();
      append_rel_side_json(json, answer.truth_rel, answer.truth_provider);
      json.field("export_scope", to_string(answer.scope));
      json.field("scope_via_community", answer.scope_via_community);
      json.field("misdocumented", answer.misdocumented);
      if (answer.hybrid_rel) {
        json.field("hybrid_rel", to_string(*answer.hybrid_rel));
      }
      json.end_object();
    } else {
      json.key("ground_truth").null();
    }
    json.field("observed", answer.observed);
    if (answer.observed) {
      json.field("regional_class", answer.regional_class);
      json.field("topological_class", answer.topological_class);
    }
    json.key("verdicts").begin_object();
    for (const auto& verdict : answer.verdicts) {
      json.key(verdict.algorithm).begin_object();
      append_rel_side_json(json, verdict.rel, verdict.provider);
      json.end_object();
    }
    json.end_object();
    if (answer.validated) {
      json.key("validation").begin_object();
      append_rel_side_json(json, answer.validated_rel,
                           answer.validated_provider);
      json.end_object();
    } else {
      json.key("validation").null();
    }
    json.end_object();
    return std::make_shared<const std::string>(std::move(json).str());
  });
}

std::shared_ptr<const std::string> QueryEngine::report_json(
    const std::string& key) const {
  // Validate the key up front so unknown keys neither poison the cache
  // nor skew its hit/miss counters.
  bool valid = key == "regional" || key == "topological";
  if (!valid && key.starts_with("table:")) {
    const std::string_view algorithm = std::string_view{key}.substr(6);
    for (const auto name : algorithm_names()) {
      if (name == algorithm) {
        valid = true;
        break;
      }
    }
  }
  if (!valid) return nullptr;
  return cache_.get_or_compute(key, [&] { return build_report(key); });
}

}  // namespace asrel::serve
