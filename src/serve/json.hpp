// Minimal JSON emission for the serving layer: no external dependency,
// string-building only. Values are written in call order; the writer does
// not validate nesting beyond matched open/close, so misuse shows up as
// malformed output in tests rather than UB.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace asrel::serve {

/// Escapes `s` into a JSON string literal (quotes included). UTF-8 bytes
/// pass through untouched; control characters are \u-escaped.
inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Streaming object/array builder with automatic comma placement.
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  JsonWriter& begin_object() {
    separate();
    out_.push_back('{');
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    out_.push_back('}');
    fresh_ = false;
    return *this;
  }
  JsonWriter& begin_array() {
    separate();
    out_.push_back('[');
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    out_.push_back(']');
    fresh_ = false;
    return *this;
  }

  JsonWriter& key(std::string_view name) {
    separate();
    out_ += json_quote(name);
    out_.push_back(':');
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    separate();
    out_ += json_quote(s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view{s}); }
  JsonWriter& value(bool b) {
    separate();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double d) {
    separate();
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", d);
    out_ += buffer;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& null() {
    separate();
    out_ += "null";
    return *this;
  }

  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// Splices a prebuilt JSON fragment (already valid JSON) as a value.
  JsonWriter& raw(std::string_view fragment) {
    separate();
    out_ += fragment;
    return *this;
  }

  [[nodiscard]] std::string str() && { return std::move(out_); }
  [[nodiscard]] const std::string& str() const& { return out_; }

 private:
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!fresh_ && !out_.empty() && out_.back() != '{' &&
        out_.back() != '[') {
      out_.push_back(',');
    }
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
  bool pending_value_ = false;
};

}  // namespace asrel::serve
