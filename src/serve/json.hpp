// Minimal JSON emission for the serving layer: no external dependency,
// string-building only. Values are written in call order; the writer does
// not validate nesting beyond matched open/close, so misuse shows up as
// malformed output in tests rather than UB.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace asrel::serve {

/// Appends `s` as a JSON string literal (quotes included) onto `out`.
/// UTF-8 bytes pass through untouched; control characters are \u-escaped.
/// Runs of clean bytes are appended in bulk — the serve hot path emits
/// dozens of keys per response, and a per-character loop with a temporary
/// string per key was the single biggest cost in the /rel handler.
inline void json_quote_into(std::string& out, std::string_view s) {
  const auto needs_escape = [](char c) {
    return c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20;
  };
  out.push_back('"');
  std::size_t run = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (!needs_escape(c)) continue;
    out.append(s.data() + run, i - run);
    run = i + 1;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default: {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                      static_cast<unsigned>(c));
        out += buffer;
      }
    }
  }
  out.append(s.data() + run, s.size() - run);
  out.push_back('"');
}

/// Escapes `s` into a fresh JSON string literal (quotes included).
inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  json_quote_into(out, s);
  return out;
}

/// Streaming object/array builder with automatic comma placement.
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  JsonWriter& begin_object() {
    separate();
    out_.push_back('{');
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    out_.push_back('}');
    fresh_ = false;
    return *this;
  }
  JsonWriter& begin_array() {
    separate();
    out_.push_back('[');
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    out_.push_back(']');
    fresh_ = false;
    return *this;
  }

  JsonWriter& key(std::string_view name) {
    separate();
    json_quote_into(out_, name);
    out_.push_back(':');
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    separate();
    json_quote_into(out_, s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view{s}); }
  JsonWriter& value(bool b) {
    separate();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double d) {
    separate();
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", d);
    out_ += buffer;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separate();
    char buffer[24];
    const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), v);
    out_.append(buffer, end);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separate();
    char buffer[24];
    const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), v);
    out_.append(buffer, end);
    return *this;
  }
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& null() {
    separate();
    out_ += "null";
    return *this;
  }

  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// Splices a prebuilt JSON fragment (already valid JSON) as a value.
  JsonWriter& raw(std::string_view fragment) {
    separate();
    out_ += fragment;
    return *this;
  }

  [[nodiscard]] std::string str() && { return std::move(out_); }
  [[nodiscard]] const std::string& str() const& { return out_; }

 private:
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!fresh_ && !out_.empty() && out_.back() != '{' &&
        out_.back() != '[') {
      out_.push_back(',');
    }
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
  bool pending_value_ = false;
};

}  // namespace asrel::serve
