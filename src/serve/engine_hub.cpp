#include "serve/engine_hub.hpp"

#include <chrono>
#include <utility>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace asrel::serve {

namespace {

/// Reload telemetry lives in the global registry: a process hosts one
/// logical snapshot lineage even when tests spin up several hubs.
struct ReloadMetrics {
  obs::Counter& ok;
  obs::Counter& failed;
  obs::Histogram& duration_us;

  static ReloadMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ReloadMetrics metrics{
        reg.counter("asrel_reloads_total{result=\"ok\"}",
                    "Snapshot hot reloads by outcome"),
        reg.counter("asrel_reloads_total{result=\"failed\"}"),
        reg.histogram("asrel_reload_duration_us", obs::stage_buckets_us(),
                      "Wall time per reload attempt (microseconds)"),
    };
    return metrics;
  }
};

}  // namespace

EngineHub::EngineHub(std::shared_ptr<const QueryEngine> initial,
                     SnapshotLoader loader)
    : engine_(std::move(initial)), loader_(std::move(loader)) {}

EngineHub::EngineHub(std::shared_ptr<const QueryEngine> initial,
                     EngineLoader loader)
    : engine_(std::move(initial)), engine_loader_(std::move(loader)) {}

EngineHub::ReloadResult EngineHub::reload() {
  std::lock_guard<std::mutex> lock{reload_mutex_};
  ReloadMetrics& metrics = ReloadMetrics::get();
  const auto reload_started = std::chrono::steady_clock::now();
  const auto observe_duration = [&] {
    metrics.duration_us.observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - reload_started)
            .count()));
  };
  static obs::LogSite reload_ok_site{"serve.hub", "reload_ok", 0};
  static obs::LogSite reload_failed_site{"serve.hub", "reload_failed", 0};
  ReloadResult result;
  const auto fail = [&](std::string message) {
    ++reloads_failed_;
    metrics.failed.inc();
    observe_duration();
    obs::log_event(reload_failed_site, obs::LogLevel::kError, 0,
                   {{"epoch", epoch()}, {"error", message}});
    last_error_ = message;
    result.ok = false;
    result.epoch = epoch();
    result.error = std::move(message);
    return result;
  };

  std::shared_ptr<const QueryEngine> next;
  std::string error;
  if (engine_loader_) {
    // Flat path: the loader already produced a ready engine (mmap +
    // validate); nothing left to build before publication.
    next = engine_loader_(&error);
    if (next == nullptr) {
      return fail(error.empty() ? "engine loader failed" : error);
    }
  } else if (loader_) {
    auto snapshot = loader_(&error);
    if (!snapshot) {
      return fail(error.empty() ? "snapshot loader failed" : error);
    }
    // The expensive part — index building — happens before publication,
    // on the reloading thread, while every worker keeps serving the old
    // epoch.
    next = std::make_shared<const QueryEngine>(std::move(*snapshot));
  } else {
    return fail("no snapshot loader configured (static deployment)");
  }
  engine_.store(std::move(next), std::memory_order_release);
  const std::uint64_t epoch =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;

  ++reloads_ok_;
  metrics.ok.inc();
  observe_duration();
  obs::log_event(
      reload_ok_site, obs::LogLevel::kInfo, 0,
      {{"epoch", epoch},
       {"duration_us",
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - reload_started)
                .count())}});
  last_error_.clear();
  result.ok = true;
  result.epoch = epoch;
  return result;
}

EngineHub::ReloadResult EngineHub::publish(io::Snapshot snapshot) {
  std::lock_guard<std::mutex> lock{reload_mutex_};
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& publishes_total = registry.counter(
      "asrel_stream_publishes_total",
      "In-memory snapshot publications (streaming epochs)");
  // Index building happens before the swap, on the publishing thread;
  // workers keep serving the previous epoch until the single store below.
  auto next = std::make_shared<const QueryEngine>(std::move(snapshot));
  engine_.store(std::move(next), std::memory_order_release);
  const std::uint64_t epoch =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  ++publishes_;
  publishes_total.inc();
  // Rate-capped: streaming can publish many epochs per second, and the
  // interesting signal is that publication is happening at all, plus the
  // latest epoch number.
  static obs::LogSite publish_site{"serve.hub", "publish", 4};
  obs::log_event(publish_site, obs::LogLevel::kInfo, 0, {{"epoch", epoch}});
  ReloadResult result;
  result.ok = true;
  result.epoch = epoch;
  return result;
}

EngineHub::Stats EngineHub::stats() const {
  Stats stats;
  stats.epoch = epoch();
  // reload_mutex_ also guards the counters; stats() is cold (one /statsz
  // hit), so taking it here is fine.
  std::lock_guard<std::mutex> lock{reload_mutex_};
  stats.reloads_ok = reloads_ok_;
  stats.reloads_failed = reloads_failed_;
  stats.publishes = publishes_;
  stats.last_error = last_error_;
  return stats;
}

}  // namespace asrel::serve
