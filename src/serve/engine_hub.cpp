#include "serve/engine_hub.hpp"

#include <utility>

namespace asrel::serve {

EngineHub::EngineHub(std::shared_ptr<const QueryEngine> initial,
                     SnapshotLoader loader)
    : engine_(std::move(initial)), loader_(std::move(loader)) {}

EngineHub::ReloadResult EngineHub::reload() {
  std::lock_guard<std::mutex> lock{reload_mutex_};
  ReloadResult result;
  const auto fail = [&](std::string message) {
    ++reloads_failed_;
    last_error_ = message;
    result.ok = false;
    result.epoch = epoch();
    result.error = std::move(message);
    return result;
  };

  if (!loader_) {
    return fail("no snapshot loader configured (static deployment)");
  }
  std::string error;
  auto snapshot = loader_(&error);
  if (!snapshot) {
    return fail(error.empty() ? "snapshot loader failed" : error);
  }

  // The expensive part — index building — happens before publication, on
  // the reloading thread, while every worker keeps serving the old epoch.
  auto next =
      std::make_shared<const QueryEngine>(std::move(*snapshot));
  engine_.store(std::move(next), std::memory_order_release);
  const std::uint64_t epoch =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;

  ++reloads_ok_;
  last_error_.clear();
  result.ok = true;
  result.epoch = epoch;
  return result;
}

EngineHub::Stats EngineHub::stats() const {
  Stats stats;
  stats.epoch = epoch();
  // reload_mutex_ also guards the counters; stats() is cold (one /statsz
  // hit), so taking it here is fine.
  std::lock_guard<std::mutex> lock{reload_mutex_};
  stats.reloads_ok = reloads_ok_;
  stats.reloads_failed = reloads_failed_;
  stats.last_error = last_error_;
  return stats;
}

}  // namespace asrel::serve
