#include "serve/http_parser.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <limits>

namespace asrel::serve {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Removes one line (up to LF or end) from `*rest` and returns it with any
/// trailing CR stripped, so CRLF and bare-LF input parse identically.
std::string_view take_line(std::string_view* rest) {
  const std::size_t lf = rest->find('\n');
  std::string_view line;
  if (lf == std::string_view::npos) {
    line = *rest;
    *rest = {};
  } else {
    line = rest->substr(0, lf);
    *rest = rest->substr(lf + 1);
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

HttpParse fail(std::string reason) {
  HttpParse result;
  result.ok = false;
  result.error = std::move(reason);
  return result;
}

}  // namespace

const std::string* HttpRequest::query_param(std::string_view name) const {
  for (const auto& [key, value] : query) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string percent_decode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '%' && i + 2 < in.size()) {
      const int high = hex_digit(in[i + 1]);
      const int low = hex_digit(in[i + 2]);
      if (high >= 0 && low >= 0) {
        out.push_back(static_cast<char>(high * 16 + low));
        i += 2;
        continue;
      }
    }
    out.push_back(in[i] == '+' ? ' ' : in[i]);
  }
  return out;
}

std::size_t find_header_end(std::string_view buffer,
                            std::size_t* header_len) {
  // The header block ends at the first empty line. Scanning LF-to-LF
  // handles CRLF, bare LF, and mixtures in one pass.
  std::size_t pos = 0;
  while (pos < buffer.size()) {
    const std::size_t lf = buffer.find('\n', pos);
    if (lf == std::string_view::npos) return std::string_view::npos;
    const std::size_t line_len =
        lf - pos - (lf > pos && buffer[lf - 1] == '\r' ? 1 : 0);
    if (line_len == 0) {
      if (header_len != nullptr) *header_len = pos;
      return lf + 1;
    }
    pos = lf + 1;
  }
  return std::string_view::npos;
}

HttpParse parse_http_request(std::string_view header_block,
                             HttpRequest* request) {
  std::string_view rest = header_block;
  const std::string_view request_line = take_line(&rest);
  if (request_line.size() > kMaxRequestLineBytes) {
    return fail("request line too long");
  }

  const std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) {
    return fail("malformed request line");
  }
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    return fail("malformed request line");
  }
  const std::string_view version = request_line.substr(sp2 + 1);
  if (!version.starts_with("HTTP/1.")) {
    return fail("unsupported protocol version");
  }

  request->method = std::string{request_line.substr(0, sp1)};
  request->target = std::string{request_line.substr(sp1 + 1, sp2 - sp1 - 1)};
  request->keep_alive = version != "HTTP/1.0";

  const std::string_view target = request->target;
  const std::size_t question = target.find('?');
  request->path = percent_decode(target.substr(0, question));
  if (question != std::string_view::npos) {
    std::string_view pairs = target.substr(question + 1);
    while (!pairs.empty()) {
      const std::size_t amp = pairs.find('&');
      const std::string_view pair = pairs.substr(0, amp);
      const std::size_t eq = pair.find('=');
      if (!pair.empty()) {
        request->query.emplace_back(
            percent_decode(pair.substr(0, eq)),
            eq == std::string_view::npos ? std::string{}
                                         : percent_decode(pair.substr(eq + 1)));
      }
      if (amp == std::string_view::npos) break;
      pairs = pairs.substr(amp + 1);
    }
  }

  HttpParse result;
  result.ok = true;
  bool have_content_length = false;
  while (!rest.empty()) {
    const std::string_view line = take_line(&rest);
    if (line.empty()) break;  // defensive: callers stop at the blank line
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;  // tolerated, ignored
    std::string name{line.substr(0, colon)};
    for (auto& c : name) c = static_cast<char>(std::tolower(
                             static_cast<unsigned char>(c)));
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.remove_suffix(1);
    }
    if (name == "x-request-id") {
      // Captured verbatim but bounded: a header longer than the canonical
      // 16-hex form can never be honored, so don't buffer it either.
      if (value.size() <= 64) {
        request->client_request_id = std::string{value};
      }
    } else if (name == "connection") {
      std::string lowered{value};
      for (auto& c : lowered) c = static_cast<char>(std::tolower(
                                  static_cast<unsigned char>(c)));
      if (lowered == "close") request->keep_alive = false;
      if (lowered == "keep-alive") request->keep_alive = true;
    } else if (name == "content-length") {
      // Digits only, full-width, no overflow: anything else is either a
      // broken client or a smuggling attempt, and both get a 400.
      std::uint64_t parsed = 0;
      const char* begin = value.data();
      const char* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, parsed);
      if (value.empty() || ec != std::errc{} || ptr != end ||
          parsed > std::numeric_limits<std::size_t>::max()) {
        return fail("invalid Content-Length");
      }
      if (have_content_length &&
          result.content_length != static_cast<std::size_t>(parsed)) {
        return fail("conflicting Content-Length headers");
      }
      result.content_length = static_cast<std::size_t>(parsed);
      have_content_length = true;
    }
  }
  return result;
}

}  // namespace asrel::serve
