// Fixed-slot timer wheel for the epoll event loop.
//
// One wheel per loop thread, single-threaded by construction. Timers are
// keyed by an opaque id (the connection fd) and use lazy cancellation:
// re-arming bumps the id's generation, and stale wheel entries are
// skipped when their slot comes due instead of being hunted down at
// cancel time — O(1) arm/cancel, no per-timer allocation beyond the slot
// vectors. Deadlines beyond the wheel horizon are re-enqueued when their
// slot fires (a single cascade level is enough: the horizon comfortably
// covers the serve timeouts, so cascading is the cold path).
#pragma once

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace asrel::serve {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  /// Lifetime counters, single-threaded like the wheel itself. The epoll
  /// loop flushes deltas into the server's Prometheus counters once per
  /// iteration. `late_fires` counts timers that fired a full wheel
  /// revolution (granularity * slots) or more past their deadline — the
  /// symptom of the re-arm-into-swept-tick bug the enqueue clamp fixed,
  /// kept nonzero-alarming so a regression shows up on /metricsz instead
  /// of as a mysteriously stretched timeout.
  struct Stats {
    std::uint64_t arms = 0;
    std::uint64_t lazy_cancels = 0;  ///< stale entries skipped at sweep
    std::uint64_t fires = 0;
    std::uint64_t cascades = 0;  ///< past-horizon entries re-enqueued
    std::uint64_t late_fires = 0;
  };

  explicit TimerWheel(std::chrono::milliseconds granularity =
                          std::chrono::milliseconds{8},
                      std::size_t slots = 512)
      : granularity_(granularity), slots_(slots), wheel_(slots) {}

  /// Arms (or re-arms) `id` to fire at `deadline`. The previous deadline
  /// for `id`, if any, is superseded.
  void arm(std::uint64_t id, Clock::time_point deadline) {
    auto& state = timers_[id];
    ++state.generation;
    state.deadline = deadline;
    ++stats_.arms;
    enqueue(id, state.generation, deadline);
  }

  void cancel(std::uint64_t id) { timers_.erase(id); }

  [[nodiscard]] bool armed(std::uint64_t id) const {
    return timers_.contains(id);
  }

  /// Milliseconds until the next possibly-due slot, for the epoll_wait
  /// timeout. Returns `idle` when nothing is armed.
  [[nodiscard]] std::chrono::milliseconds poll_timeout(
      Clock::time_point now, std::chrono::milliseconds idle) const {
    if (timers_.empty()) return idle;
    Clock::time_point nearest = Clock::time_point::max();
    for (const auto& [id, state] : timers_) {
      if (state.deadline < nearest) nearest = state.deadline;
    }
    if (nearest <= now) return std::chrono::milliseconds{0};
    const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
        nearest - now);
    return std::min(std::max(until, granularity_), idle);
  }

  /// Fires every timer whose deadline has passed. `fire(id)` runs after
  /// the timer is removed, so the callback may re-arm freely.
  template <typename Fire>
  void expire(Clock::time_point now, Fire&& fire) {
    // Sweep every slot from the last sweep position through `now`; slots
    // hold lazily-cancelled entries, so each entry is revalidated against
    // the live timer table before firing.
    const std::uint64_t now_tick = tick_of(now);
    if (now_tick < last_tick_) return;
    const std::uint64_t first = last_tick_;
    const std::uint64_t span = std::min<std::uint64_t>(
        now_tick - first + 1, static_cast<std::uint64_t>(slots_));
    for (std::uint64_t t = 0; t < span; ++t) {
      // Advance the sweep cursor BEFORE running callbacks: a fire()
      // re-arming into the tick being swept (or one already swept) must
      // land in the next unswept slot, not wait a full wheel revolution.
      // (The epoll stall timer re-arms to last_activity + timeout, which
      // is usually in the past at fire time — without the clamp that
      // timer silently stretched to the ~4 s wheel horizon.)
      last_tick_ = first + t + 1;
      auto& slot = wheel_[(first + t) % slots_];
      std::vector<Entry> entries;
      entries.swap(slot);
      for (const Entry& entry : entries) {
        const auto it = timers_.find(entry.id);
        if (it == timers_.end() ||
            it->second.generation != entry.generation) {
          ++stats_.lazy_cancels;
          continue;  // cancelled or superseded
        }
        if (it->second.deadline > now) {
          // Beyond the horizon when enqueued (or re-armed into the
          // future): push it back out to its real slot.
          ++stats_.cascades;
          enqueue(entry.id, entry.generation, it->second.deadline);
          continue;
        }
        const Clock::time_point deadline = it->second.deadline;
        timers_.erase(it);
        ++stats_.fires;
        if (now - deadline >=
            granularity_ * static_cast<std::int64_t>(slots_)) {
          ++stats_.late_fires;
        }
        fire(entry.id);
      }
    }
    last_tick_ = now_tick + 1;
  }

  [[nodiscard]] std::size_t armed_count() const { return timers_.size(); }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::uint64_t generation = 0;
  };
  struct TimerState {
    std::uint64_t generation = 0;
    Clock::time_point deadline;
  };

  [[nodiscard]] std::uint64_t tick_of(Clock::time_point t) const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            t.time_since_epoch())
            .count()) /
           static_cast<std::uint64_t>(granularity_.count());
  }

  void enqueue(std::uint64_t id, std::uint64_t generation,
               Clock::time_point deadline) {
    // Entries past the horizon land in their modulo slot and cascade when
    // that slot next fires (expire() re-enqueues them). Already-due
    // deadlines (ticks the sweep has passed) clamp forward to the next
    // unswept slot so they fire on the next expire(), not a revolution
    // from now.
    std::uint64_t tick = tick_of(deadline);
    if (tick < last_tick_) tick = last_tick_;
    wheel_[tick % slots_].push_back(Entry{id, generation});
  }

  std::chrono::milliseconds granularity_;
  std::size_t slots_;
  std::vector<std::vector<Entry>> wheel_;
  std::unordered_map<std::uint64_t, TimerState> timers_;
  std::uint64_t last_tick_ = 0;
  Stats stats_;
};

}  // namespace asrel::serve
