// Shared HTTP/1.1 response assembly for both serve front ends.
//
// The blocking thread-pool path and the epoll event loop must produce
// byte-identical responses (CI asserts it), so all header rendering lives
// here: status lines and fixed header fragments are preassembled once and
// memcpy'd into place, the only per-response formatting being the
// Content-Length digits. The epoll path appends many responses into one
// output queue and flushes them with a single writev; the blocking path
// renders one response at a time through the same append routine.
//
// The shed response (503 + Retry-After) also has exactly one builder —
// admission-control sheds, EMFILE emergency sheds, and drain-time sheds
// of never-served connections all emit the same bytes.
#pragma once

#include <string>

#include "serve/http_server.hpp"

namespace asrel::serve {

/// Reason phrase for the status codes this server emits.
[[nodiscard]] const char* status_text(int status);

/// Appends one fully rendered response (status line, headers, body) to
/// `out`. `keep_alive` selects the Connection header. This is the single
/// source of response bytes for both front ends.
void append_http_response(std::string& out, const HttpResponse& response,
                          bool keep_alive);

/// One-shot form of append_http_response (blocking path convenience).
[[nodiscard]] std::string render_http_response(const HttpResponse& response,
                                               bool keep_alive);

/// The one shed response: 503 + Retry-After. Every path that refuses a
/// connection it never served (queue-full admission, EMFILE emergency,
/// drain-time abort of queued connections) sends exactly these bytes.
[[nodiscard]] HttpResponse make_shed_response(int retry_after_s);

}  // namespace asrel::serve
