#include "serve/request_assembler.hpp"

#include "obs/log.hpp"

namespace asrel::serve {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

AssemblerStatus RequestAssembler::next(HttpRequest* out) {
  std::size_t header_len = 0;
  const std::size_t body_start = find_header_end(buffer_, &header_len);
  if (body_start == std::string::npos) {
    // No blank line yet: either the header is still in flight or the
    // client is writing past the limit without ever finishing one.
    return buffer_.size() > max_request_bytes_ ? AssemblerStatus::kTooLarge
                                               : AssemblerStatus::kNeedMore;
  }

  HttpRequest request;
  const HttpParse parsed = parse_http_request(
      std::string_view{buffer_}.substr(0, header_len), &request);
  if (!parsed) return AssemblerStatus::kMalformed;
  if (parsed.content_length > max_request_bytes_) {
    return AssemblerStatus::kBodyTooLarge;
  }
  if (buffer_.size() - body_start < parsed.content_length) {
    return AssemblerStatus::kNeedMore;  // body still in flight
  }

  // Consume exactly this request; pipelined followers stay buffered.
  buffer_.erase(0, body_start + parsed.content_length);

  // Resolve request identity: a valid client-supplied id (1..16 hex
  // digits, nonzero) wins; otherwise mint the next id from this
  // connection's deterministic stream. The generator always advances so
  // a mix of client-tagged and untagged requests still yields stable ids
  // for the untagged ones.
  const std::uint64_t generated = splitmix64(id_state_);
  std::uint64_t client_id = 0;
  if (!request.client_request_id.empty() &&
      obs::parse_request_id(request.client_request_id, &client_id) &&
      client_id != 0) {
    request.request_id = client_id;
  } else {
    request.request_id = generated;
    request.client_request_id.clear();  // invalid ids are not echoed
  }

  *out = std::move(request);
  return AssemblerStatus::kRequest;
}

}  // namespace asrel::serve
