#include "serve/request_assembler.hpp"

namespace asrel::serve {

AssemblerStatus RequestAssembler::next(HttpRequest* out) {
  std::size_t header_len = 0;
  const std::size_t body_start = find_header_end(buffer_, &header_len);
  if (body_start == std::string::npos) {
    // No blank line yet: either the header is still in flight or the
    // client is writing past the limit without ever finishing one.
    return buffer_.size() > max_request_bytes_ ? AssemblerStatus::kTooLarge
                                               : AssemblerStatus::kNeedMore;
  }

  HttpRequest request;
  const HttpParse parsed = parse_http_request(
      std::string_view{buffer_}.substr(0, header_len), &request);
  if (!parsed) return AssemblerStatus::kMalformed;
  if (parsed.content_length > max_request_bytes_) {
    return AssemblerStatus::kBodyTooLarge;
  }
  if (buffer_.size() - body_start < parsed.content_length) {
    return AssemblerStatus::kNeedMore;  // body still in flight
  }

  // Consume exactly this request; pipelined followers stay buffered.
  buffer_.erase(0, body_start + parsed.content_length);
  *out = std::move(request);
  return AssemblerStatus::kRequest;
}

}  // namespace asrel::serve
