#include "serve/service.hpp"

#include <charconv>
#include <optional>

#include "rir/region.hpp"
#include "serve/json.hpp"

namespace asrel::serve {

namespace {

std::optional<asn::Asn> parse_asn(const std::string* value) {
  if (value == nullptr || value->empty()) return std::nullopt;
  std::uint32_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), parsed);
  if (ec != std::errc{} || ptr != value->data() + value->size()) {
    return std::nullopt;
  }
  return asn::Asn{parsed};
}

HttpResponse bad_request(std::string_view message) {
  JsonWriter json;
  json.begin_object();
  json.field("error", message);
  json.end_object();
  return HttpResponse::json(400, std::move(json).str());
}

HttpResponse not_found(std::string_view message) {
  JsonWriter json;
  json.begin_object();
  json.field("error", message);
  json.end_object();
  return HttpResponse::json(404, std::move(json).str());
}

HttpResponse handle_rel(const QueryEngine& engine,
                        const HttpRequest& request) {
  const auto a = parse_asn(request.query_param("a"));
  const auto b = parse_asn(request.query_param("b"));
  if (!a || !b) {
    return bad_request("expected numeric query parameters a and b");
  }
  if (*a == *b) return bad_request("a and b must differ");
  // The engine renders (and caches) the body: it is immutable for its
  // epoch, so point-lookup bodies are cacheable like aggregate reports.
  return HttpResponse::json(200, *engine.rel_json(*a, *b));
}

HttpResponse handle_as(const QueryEngine& engine,
                       const HttpRequest& request) {
  const auto asn = parse_asn(request.query_param("asn"));
  if (!asn) return bad_request("expected numeric query parameter asn");
  const auto summary = engine.as_summary(*asn);
  if (!summary) return not_found("unknown ASN");

  JsonWriter json;
  json.begin_object();
  json.field("asn", std::uint64_t{summary->asn.value()});
  json.field("region", rir::abbreviation(summary->region));
  json.field("country", summary->country);
  json.field("tier", to_string(summary->tier));
  json.field("hypergiant", summary->hypergiant);
  json.field("transit_degree", summary->transit_degree);
  json.field("node_degree", summary->node_degree);
  json.field("cone_size", summary->cone_size);
  json.key("neighbors").begin_object();
  json.field("providers", summary->providers);
  json.field("customers", summary->customers);
  json.field("peers", summary->peers);
  json.field("siblings", summary->siblings);
  json.end_object();
  json.field("observed_links", summary->observed_links);
  json.field("validated_links", summary->validated_links);
  json.end_object();
  return HttpResponse::json(200, std::move(json).str());
}

HttpResponse handle_links(const QueryEngine& engine,
                          const HttpRequest& request) {
  std::size_t limit = 256;
  if (const std::string* raw = request.query_param("limit")) {
    limit = static_cast<std::size_t>(std::strtoull(raw->c_str(), nullptr, 10));
    if (limit == 0 || limit > 100000) {
      return bad_request("limit must be in [1, 100000]");
    }
  }
  const auto links = engine.sample_links(limit);
  JsonWriter json;
  json.begin_object();
  json.field("count", links.size());
  json.key("links").begin_array();
  for (const auto& link : links) {
    json.begin_array();
    json.value(std::uint64_t{link.a.value()});
    json.value(std::uint64_t{link.b.value()});
    json.end_array();
  }
  json.end_array();
  json.end_object();
  return HttpResponse::json(200, std::move(json).str());
}

/// POST /reloadz: synchronous snapshot swap. 200 with the new epoch on
/// success; 503 with the diagnosis (and the old epoch still serving) on
/// failure — an operator retry loop can key off the status alone.
HttpResponse handle_reload(EngineHub& hub) {
  const EngineHub::ReloadResult result = hub.reload();
  JsonWriter json;
  json.begin_object();
  json.field("ok", result.ok);
  json.field("epoch", result.epoch);
  if (!result.ok) json.field("error", result.error);
  json.end_object();
  return HttpResponse::json(result.ok ? 200 : 503, std::move(json).str());
}

HttpResponse handle_snapshot_info(const QueryEngine& engine) {
  // Light accessors only: in flat (v3) mode this route must not force
  // the engine to inflate a full in-memory snapshot.
  const io::SnapshotMeta& meta = engine.meta();
  JsonWriter json;
  json.begin_object();
  json.field("as_count_param", std::int64_t{meta.as_count});
  json.field("seed", std::uint64_t{meta.seed});
  json.field("scheme_seed", std::uint64_t{meta.scheme_seed});
  json.field("ases", engine.num_ases());
  json.field("edges", engine.num_edges());
  json.field("observed_links", engine.num_links());
  json.field("validation_labels", engine.num_validation());
  json.key("algorithms").begin_array();
  for (const auto name : engine.algorithm_names()) {
    json.value(name);
  }
  json.end_array();
  json.end_object();
  return HttpResponse::json(200, std::move(json).str());
}

}  // namespace

HttpResponse AsrelService::handle(const HttpRequest& request) const {
  const std::string& path = request.path;

  if (request.method == "POST") {
    if (path == "/reloadz") return handle_reload(*hub_);
    return HttpResponse::json(405, R"({"error":"only GET is supported"})");
  }
  if (request.method != "GET") {
    return HttpResponse::json(405, R"({"error":"only GET is supported"})");
  }

  // Pin one epoch for the whole request: a concurrent reload publishes a
  // new engine, but this request finishes on the snapshot it started on.
  const std::shared_ptr<const QueryEngine> engine = hub_->current();

  if (path == "/rel") return handle_rel(*engine, request);
  if (path == "/as") return handle_as(*engine, request);
  if (path == "/links") return handle_links(*engine, request);
  if (path == "/snapshot") return handle_snapshot_info(*engine);
  if (path == "/report/regional" || path == "/report/topological") {
    const std::string key = path.substr(sizeof("/report/") - 1);
    if (auto report = engine->report_json(key)) {
      return HttpResponse::json(200, *report);
    }
    return not_found("unknown report");
  }
  if (path == "/report/table") {
    const std::string* algo = request.query_param("algo");
    if (algo == nullptr || algo->empty()) {
      return bad_request("expected query parameter algo");
    }
    if (auto report = engine->report_json("table:" + *algo)) {
      return HttpResponse::json(200, *report);
    }
    return not_found("unknown algorithm");
  }
  return not_found("unknown path");
}

std::string AsrelService::stats_json() const {
  const std::shared_ptr<const QueryEngine> engine = hub_->current();
  const CacheStats cache = engine->cache_stats();
  const EngineHub::Stats reload = hub_->stats();
  JsonWriter json;
  json.begin_object();
  json.key("report_cache").begin_object();
  json.field("hits", cache.hits);
  json.field("misses", cache.misses);
  json.field("evictions", cache.evictions);
  json.field("entries", cache.entries);
  json.field("hit_rate", cache.hit_rate());
  json.end_object();
  const CacheStats rel_cache = engine->rel_cache_stats();
  json.key("rel_cache").begin_object();
  json.field("hits", rel_cache.hits);
  json.field("misses", rel_cache.misses);
  json.field("evictions", rel_cache.evictions);
  json.field("entries", rel_cache.entries);
  json.field("hit_rate", rel_cache.hit_rate());
  json.end_object();
  json.key("reload").begin_object();
  json.field("epoch", reload.epoch);
  json.field("ok", reload.reloads_ok);
  json.field("failed", reload.reloads_failed);
  json.field("publishes", reload.publishes);
  if (!reload.last_error.empty()) {
    json.field("last_error", reload.last_error);
  }
  json.end_object();
  // The epoch stamped inside the served snapshot itself (0 for batch
  // builds; monotonic per streaming publication) — loadgen --epoch-watch
  // polls this to catch swaps.
  json.key("snapshot").begin_object();
  json.field("epoch", engine->meta().epoch);
  json.field("built_unix_ms", engine->meta().built_unix_ms);
  json.end_object();
  json.field("observed_links", engine->num_links());
  json.field("validation_labels", engine->num_validation());
  if (stream_stats_) {
    const std::string stream = stream_stats_();
    if (!stream.empty()) json.key("stream").raw(stream);
  }
  json.end_object();
  return std::move(json).str();
}

void AsrelService::collect_metrics(
    std::vector<obs::MetricSnapshot>& out) const {
  const auto counter = [&out](std::string name, double value,
                              std::string_view help = {}) {
    obs::MetricSnapshot snap;
    snap.name = std::move(name);
    snap.help = std::string{help};
    snap.type = obs::MetricType::kCounter;
    snap.value = value;
    out.push_back(std::move(snap));
  };
  const auto gauge = [&out](std::string name, double value,
                            std::string_view help = {}) {
    obs::MetricSnapshot snap;
    snap.name = std::move(name);
    snap.help = std::string{help};
    snap.type = obs::MetricType::kGauge;
    snap.value = value;
    out.push_back(std::move(snap));
  };

  const std::shared_ptr<const QueryEngine> engine = hub_->current();
  const CacheStats cache = engine->cache_stats();
  for (std::size_t i = 0; i < cache.shards.size(); ++i) {
    const ShardStats& shard = cache.shards[i];
    const std::string label = "{shard=\"" + std::to_string(i) + "\"}";
    counter("asrel_cache_hits_total" + label,
            static_cast<double>(shard.hits),
            "Report-cache hits per shard (current snapshot epoch)");
    counter("asrel_cache_misses_total" + label,
            static_cast<double>(shard.misses));
    counter("asrel_cache_evictions_total" + label,
            static_cast<double>(shard.evictions));
    gauge("asrel_cache_entries" + label,
          static_cast<double>(shard.entries));
  }
  const CacheStats rel_cache = engine->rel_cache_stats();
  counter("asrel_rel_cache_hits_total",
          static_cast<double>(rel_cache.hits),
          "Rendered /rel body cache hits (current snapshot epoch)");
  counter("asrel_rel_cache_misses_total",
          static_cast<double>(rel_cache.misses));
  gauge("asrel_rel_cache_entries", static_cast<double>(rel_cache.entries));
  const EngineHub::Stats reload = hub_->stats();
  gauge("asrel_engine_epoch", static_cast<double>(reload.epoch),
        "Snapshot epoch currently serving");
  gauge("asrel_snapshot_epoch", static_cast<double>(engine->meta().epoch),
        "Epoch stamped in the served snapshot header (0 = batch build)");
  gauge("asrel_snapshot_built_unix_ms",
        static_cast<double>(engine->meta().built_unix_ms),
        "Build timestamp stamped in the served snapshot header");
  gauge("asrel_engine_observed_links",
        static_cast<double>(engine->num_links()));
  gauge("asrel_engine_validation_labels",
        static_cast<double>(engine->num_validation()));
}

std::vector<std::string> AsrelService::metric_routes() {
  return {"/rel",
          "/as",
          "/links",
          "/snapshot",
          "/report/regional",
          "/report/topological",
          "/report/table",
          "/reloadz"};
}

}  // namespace asrel::serve
