// HTTP/1.1 request parsing, split out of HttpServer so that unit tests and
// fuzz targets can drive it byte-for-byte without sockets.
//
// The parser is deliberately strict where laxness enables smuggling and
// lenient where real clients are sloppy:
//   * line endings: CRLF and bare LF are both accepted (curl pre-7.64,
//     netcat-driven health checks, and fuzzers all produce bare LF),
//   * request line: capped at kMaxRequestLineBytes, must be
//     METHOD SP TARGET SP HTTP/1.x,
//   * Content-Length: digits only, must fit in size_t, and duplicate
//     headers must agree (RFC 7230 §3.3.2 — conflicting values are the
//     classic request-smuggling vector and are rejected outright).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace asrel::serve {

/// Longest request line (method + target + version) we accept. 8 KiB
/// matches Apache/nginx defaults; anything longer is 400'd instead of
/// buffered.
inline constexpr std::size_t kMaxRequestLineBytes = 8192;

struct HttpRequest {
  std::string method;
  std::string target;  ///< raw request target, e.g. "/rel?a=1&b=2"
  std::string path;    ///< decoded path, e.g. "/rel"
  std::vector<std::pair<std::string, std::string>> query;
  bool keep_alive = true;

  /// Client-supplied X-Request-Id header value, verbatim (may be empty).
  /// Only a 1..16-hex-digit value is honored downstream; anything else is
  /// replaced by a server-generated id.
  std::string client_request_id;

  /// Resolved request id: the parsed client id when valid, otherwise a
  /// per-connection splitmix64 id stamped by RequestAssembler. Echoed as
  /// `X-Request-Id` and threaded through /slowz, /tracez, and /logz.
  std::uint64_t request_id = 0;

  /// First value for `name`, or nullptr.
  [[nodiscard]] const std::string* query_param(std::string_view name) const;
};

struct HttpParse {
  bool ok = false;
  std::string error;  ///< one-line reason when !ok (for tests and logs)
  std::size_t content_length = 0;

  explicit operator bool() const { return ok; }
};

/// Finds the blank line terminating the header block. Accepts CRLF and
/// bare-LF line endings (also mixed). Returns the offset of the first body
/// byte, or npos while the block is still incomplete; `*header_len` gets
/// the length of the header block itself (request line + headers, without
/// the blank line).
[[nodiscard]] std::size_t find_header_end(std::string_view buffer,
                                          std::size_t* header_len);

/// Parses the header block (request line + header fields, no body).
[[nodiscard]] HttpParse parse_http_request(std::string_view header_block,
                                           HttpRequest* request);

/// Decodes %XX escapes and '+' (as space). Malformed escapes pass through
/// verbatim. Exposed for tests.
[[nodiscard]] std::string percent_decode(std::string_view in);

}  // namespace asrel::serve
