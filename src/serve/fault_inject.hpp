// Deterministic fault-injection layer for the serving stack.
//
// Chaos tests need to force the failure modes production meets rarely but
// reliably — EINTR mid-recv, short writes to slow clients, EMFILE storms
// on accept, a snapshot file torn halfway through a write — without
// patching libc or depending on timing. This layer sits between the
// server and the raw syscalls: every socket call in HttpServer and every
// snapshot file read/write routes through FaultInjector, which either
// passes straight through (the always-compiled-in, zero-cost-when-idle
// path: one relaxed atomic load) or consults a seeded plan.
//
// Determinism contract: the decision for the Nth call at a given site is
// a pure function of (seed, site, N) — SplitMix64 over a per-site call
// counter — so a fault schedule is byte-reproducible from its seed no
// matter how worker threads interleave, and a failing chaos run can be
// replayed exactly by re-arming the same plan.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <sys/types.h>
#include <sys/uio.h>

namespace asrel::serve::fault {

/// Syscall sites the injector can perturb. Each site draws from its own
/// deterministic stream.
enum class Site : std::size_t {
  kAccept = 0,
  kRecv,
  kSend,
  kSnapshotRead,
  kSnapshotWrite,
  kCheckpointRead,
  kCheckpointWrite,
  kStreamApply,
  kStreamDivergence,
  kWritev,
  kCount,
};

[[nodiscard]] const char* site_name(Site site);

/// Per-mille rates (0 = never, 1000 = every call) for each injected
/// failure, plus byte caps for torn snapshot I/O. Rates are integers so a
/// plan is trivially printable and hashable into a reproduction command.
struct FaultPlan {
  std::uint64_t seed = 0;

  std::uint32_t accept_eintr_permille = 0;
  std::uint32_t accept_econnaborted_permille = 0;
  std::uint32_t accept_emfile_permille = 0;

  std::uint32_t recv_eintr_permille = 0;
  std::uint32_t recv_eagain_permille = 0;  ///< only once buffer has bytes
  std::uint32_t recv_short_permille = 0;   ///< deliver 1 byte instead of n

  std::uint32_t send_eintr_permille = 0;
  std::uint32_t send_short_permille = 0;  ///< accept 1 byte instead of n

  /// The epoll flush path's own site: writev batches many responses into
  /// one syscall, so a torn writev exercises partial-write resume logic
  /// no send() fault can reach.
  std::uint32_t writev_eintr_permille = 0;
  std::uint32_t writev_short_permille = 0;  ///< accept 1 byte instead of all

  /// Snapshot file I/O: fail (reader: truncate; writer: ENOSPC-style
  /// error) once this many bytes have been moved. SIZE_MAX = never.
  std::size_t snapshot_read_cap = static_cast<std::size_t>(-1);
  std::size_t snapshot_write_cap = static_cast<std::size_t>(-1);

  /// Stream checkpoint file I/O, same semantics as the snapshot caps but
  /// on an independent site so chaos tests can tear one without the other.
  std::size_t checkpoint_read_cap = static_cast<std::size_t>(-1);
  std::size_t checkpoint_write_cap = static_cast<std::size_t>(-1);

  /// Rate at which StreamSession::apply() fails with a simulated
  /// allocation failure before mutating anything (drives checkpoint
  /// recovery in-process).
  std::uint32_t stream_apply_fail_permille = 0;
  /// Rate at which publish() silently corrupts the incremental path state
  /// — the drift the divergence watchdog exists to catch and heal.
  std::uint32_t stream_divergence_permille = 0;
};

/// Counts of faults actually injected, for test assertions ("the run
/// really did hit N EINTRs") and for /statsz debugging.
struct FaultStats {
  std::uint64_t accept_faults = 0;
  std::uint64_t recv_faults = 0;
  std::uint64_t send_faults = 0;
  std::uint64_t snapshot_read_faults = 0;
  std::uint64_t snapshot_write_faults = 0;
  std::uint64_t checkpoint_read_faults = 0;
  std::uint64_t checkpoint_write_faults = 0;
  std::uint64_t stream_apply_faults = 0;
  std::uint64_t stream_divergence_faults = 0;
  std::uint64_t writev_faults = 0;
};

/// Process-wide injector. All serving-layer syscalls funnel through the
/// wrappers below; arm()/disarm() bracket a chaos experiment.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Installs `plan`, resets per-site counters and stats, and enables
  /// injection. Also installs the snapshot I/O hooks (io::snapshot).
  void arm(const FaultPlan& plan);
  /// Disables injection; wrappers revert to raw syscalls.
  void disarm();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] FaultStats stats() const;

  /// The deterministic per-site decision stream: returns the uniform
  /// [0, 1000) draw for call number `n` at `site` under seed `seed`.
  /// Exposed so tests can verify byte-reproducibility directly.
  [[nodiscard]] static std::uint32_t draw(std::uint64_t seed, Site site,
                                          std::uint64_t n);

  // ---- syscall wrappers (used by HttpServer) ----
  [[nodiscard]] ssize_t recv(int fd, void* buf, std::size_t len, int flags);
  [[nodiscard]] ssize_t send(int fd, const void* buf, std::size_t len,
                             int flags);
  /// Gathered flush used by the epoll path; faults mirror send()'s
  /// (EINTR, short write of a single byte) but draw from their own site.
  [[nodiscard]] ssize_t writev(int fd, const struct iovec* iov, int iovcnt);
  [[nodiscard]] int accept(int fd);

  // ---- snapshot I/O caps (consulted by io::snapshot via hooks) ----
  /// Bytes a snapshot file read may return before simulated truncation.
  [[nodiscard]] std::size_t snapshot_read_cap();
  /// Bytes a snapshot file write may persist before simulated failure.
  [[nodiscard]] std::size_t snapshot_write_cap();

  // ---- stream sites (consulted by src/stream directly) ----
  /// Bytes a checkpoint file read may return before simulated truncation.
  [[nodiscard]] std::size_t checkpoint_read_cap();
  /// Bytes a checkpoint file write may persist before simulated failure.
  [[nodiscard]] std::size_t checkpoint_write_cap();
  /// Should this apply() call fail with a simulated allocation failure?
  [[nodiscard]] bool stream_apply_should_fail();
  /// Should this publish() seed a silent divergence for the watchdog?
  [[nodiscard]] bool stream_divergence_should_seed();

 private:
  FaultInjector() = default;

  /// Advances `site`'s counter and returns its draw; never called unless
  /// enabled. Thread-safe via per-site atomic counters.
  [[nodiscard]] std::uint32_t next_draw(Site site);

  std::atomic<bool> enabled_{false};
  FaultPlan plan_;
  std::atomic<std::uint64_t> calls_[static_cast<std::size_t>(Site::kCount)];

  std::atomic<std::uint64_t> accept_faults_{0};
  std::atomic<std::uint64_t> recv_faults_{0};
  std::atomic<std::uint64_t> send_faults_{0};
  std::atomic<std::uint64_t> snapshot_read_faults_{0};
  std::atomic<std::uint64_t> snapshot_write_faults_{0};
  std::atomic<std::uint64_t> checkpoint_read_faults_{0};
  std::atomic<std::uint64_t> checkpoint_write_faults_{0};
  std::atomic<std::uint64_t> stream_apply_faults_{0};
  std::atomic<std::uint64_t> stream_divergence_faults_{0};
  std::atomic<std::uint64_t> writev_faults_{0};
};

/// RAII arm/disarm for tests: faults stay scoped to one experiment even
/// when an ASSERT unwinds early.
class ScopedFaults {
 public:
  explicit ScopedFaults(const FaultPlan& plan) {
    FaultInjector::instance().arm(plan);
  }
  ~ScopedFaults() { FaultInjector::instance().disarm(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace asrel::serve::fault
