// Incremental HTTP/1.1 request assembly over a carried-over buffer.
//
// Both serve front ends feed raw recv bytes into one of these and pull
// complete requests off the front; whatever is left after a request —
// pipelined followers, a partial next request — stays in the buffer for
// the next pull. Centralizing the residual-buffer carry-over here is what
// keeps the two front ends from diverging: the blocking path loops
// next() inline between recvs, the epoll path drains next() after every
// readiness event, and both see the exact same request boundaries.
//
// The assembler owns only framing (header end, Content-Length body) and
// size limits; header semantics stay in parse_http_request. Bodies are
// read and discarded, mirroring the server's drain-and-ignore policy.
//
// The assembler is also where request identity is minted: the acceptor
// seeds each connection with a deterministic per-connection value, and
// every request pulled off the wire gets the next splitmix64 id from
// that stream (unless the client supplied a valid X-Request-Id, which
// wins). Ids are therefore a pure function of (server, accept order,
// request index) — the property that keeps the two front ends
// byte-identical, echo header included.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/http_parser.hpp"

namespace asrel::serve {

enum class AssemblerStatus {
  kNeedMore,      ///< no complete request at the front; feed more bytes
  kRequest,       ///< *out holds the next request; residual bytes retained
  kMalformed,     ///< unparseable header block at the front (400, close)
  kTooLarge,      ///< headers never ended within the limit (413, close)
  kBodyTooLarge,  ///< declared Content-Length over the limit (413, close)
};

class RequestAssembler {
 public:
  explicit RequestAssembler(std::size_t max_request_bytes)
      : max_request_bytes_(max_request_bytes) {}

  /// Appends raw bytes read from the socket.
  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }

  /// Extracts the next complete request from the front of the buffer.
  /// On kRequest the request's bytes (header + body) are consumed and any
  /// pipelined residue is kept; on kNeedMore nothing is consumed; on
  /// kMalformed/kTooLarge the connection should be answered and closed.
  AssemblerStatus next(HttpRequest* out);

  /// True when the buffer holds bytes of an incomplete request — the
  /// state the deadline/timeout machinery cares about ("mid-request").
  [[nodiscard]] bool has_partial() const { return !buffer_.empty(); }

  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size(); }

  /// Seeds this connection's request-id stream. The acceptor passes its
  /// per-server connection sequence number, so ids are deterministic for
  /// a given accept order regardless of front end.
  void seed_request_ids(std::uint64_t connection_sequence) {
    id_state_ = connection_sequence;
  }

 private:
  std::size_t max_request_bytes_;
  std::string buffer_;
  std::uint64_t id_state_ = 0;
};

}  // namespace asrel::serve
