#include "serve/http_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iterator>

#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "serve/fault_inject.hpp"
#include "serve/json.hpp"
#include "serve/request_assembler.hpp"
#include "serve/response_writer.hpp"

namespace asrel::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Sends the whole buffer, tolerating partial writes and EINTR. Routed
/// through the fault injector so chaos tests can force short writes.
/// MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE. Bytes that made it
/// onto the wire are credited to `bytes_out` even on a failed send.
bool send_all(int fd, std::string_view bytes,
              obs::Counter* bytes_out = nullptr) {
  auto& faults = fault::FaultInjector::instance();
  std::size_t sent = 0;
  bool ok = true;
  while (sent < bytes.size()) {
    const ssize_t n = faults.send(fd, bytes.data() + sent,
                                  bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ok = false;
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  if (bytes_out != nullptr && sent > 0) bytes_out->add(sent);
  return ok;
}

}  // namespace

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options)) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.max_pending_connections < 1) {
    options_.max_pending_connections = 1;
  }
  if (options_.request_deadline_ms < 1) options_.request_deadline_ms = 1;

  accepted_ = &metrics_.counter("asrel_http_connections_accepted_total",
                                "Connections accepted by the listener");
  requests_ = &metrics_.counter("asrel_http_requests_total",
                                "Requests dispatched to a handler");
  responses_2xx_ = &metrics_.counter(
      "asrel_http_responses_total{code=\"2xx\"}", "Responses by status class");
  responses_4xx_ =
      &metrics_.counter("asrel_http_responses_total{code=\"4xx\"}");
  responses_5xx_ =
      &metrics_.counter("asrel_http_responses_total{code=\"5xx\"}");
  malformed_ = &metrics_.counter("asrel_http_malformed_total",
                                 "Requests rejected as unparseable");
  timeouts_ = &metrics_.counter("asrel_http_timeouts_total",
                                "Requests that hit a read timeout/deadline");
  overload_rejected_ = &metrics_.counter(
      "asrel_http_shed_total", "Connections shed with 503 at admission");
  accept_retried_ = &metrics_.counter("asrel_http_accept_retried_total",
                                      "EINTR/ECONNABORTED accept retries");
  emfile_recoveries_ =
      &metrics_.counter("asrel_http_emfile_recoveries_total",
                        "fd-exhaustion emergency-path activations");
  drained_ = &metrics_.counter("asrel_http_drained_total",
                               "Connections finished during drain");
  aborted_ = &metrics_.counter("asrel_http_aborted_total",
                               "Connections force-closed");
  deadline_exceeded_ =
      &metrics_.counter("asrel_http_deadline_exceeded_total",
                        "Requests that overran the total deadline");
  bytes_read_ = &metrics_.counter("asrel_http_bytes_read_total",
                                  "Request bytes received");
  bytes_written_ = &metrics_.counter("asrel_http_bytes_written_total",
                                     "Response bytes sent");

  // Per-route latency histograms come from a closed set fixed here;
  // anything else lands in the "other" series (cardinality rule). The
  // slow rings follow the same closed set, so /slowz cardinality is
  // bounded too.
  std::vector<std::string> routes{"/healthz", "/statsz", "/metricsz",
                                  "/tracez",  "/logz",   "/slowz"};
  routes.insert(routes.end(), options_.metrics_routes.begin(),
                options_.metrics_routes.end());
  for (const std::string& route : routes) {
    route_latency_[route] = RouteObs{
        &metrics_.histogram(
            "asrel_http_request_duration_us{route=\"" + route + "\"}",
            obs::latency_buckets_us(),
            "Request latency from dispatch to response queued "
            "(microseconds)"),
        "http " + route,
        std::make_unique<obs::SlowRing>(options_.slow_ring_capacity)};
  }
  other_route_ = RouteObs{
      &metrics_.histogram("asrel_http_request_duration_us{route=\"other\"}",
                          obs::latency_buckets_us()),
      "http other",
      std::make_unique<obs::SlowRing>(options_.slow_ring_capacity)};

  // Epoll-loop internals. Registered unconditionally so every /metricsz
  // exposition carries the same families regardless of serve model (the
  // thread-pool model just never observes into them).
  static const std::vector<double> kReadySetBounds{1, 2, 4, 8, 16, 32, 64,
                                                   128, 256};
  epoll_ready_fds_ = &metrics_.histogram(
      "asrel_epoll_loop_ready_fds", kReadySetBounds,
      "Ready descriptors returned per epoll_wait");
  epoll_iteration_us_ = &metrics_.histogram(
      "asrel_epoll_loop_iteration_us", obs::latency_buckets_us(),
      "Wall time per event-loop iteration (microseconds)");
  timer_arms_ = &metrics_.counter("asrel_timer_arms_total",
                                  "Timer-wheel arm/re-arm operations");
  timer_lazy_cancels_ = &metrics_.counter(
      "asrel_timer_lazy_cancels_total",
      "Stale wheel entries skipped at their slot (superseded or cancelled)");
  timer_fires_ = &metrics_.counter("asrel_timer_fires_total",
                                   "Timer callbacks fired");
  timer_cascades_ = &metrics_.counter(
      "asrel_timer_cascades_total",
      "Beyond-horizon entries re-enqueued when their slot came due");
  timer_late_fires_ = &metrics_.counter(
      "asrel_timer_late_fires_total",
      "Fires observed >= 1 full wheel revolution past their deadline "
      "(regression guard for the sweep-cursor clamp)");
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket()");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_ANY);
  address.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return fail("bind()");
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    return fail("listen()");
  }
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    return fail("getsockname()");
  }
  bound_port_ = ntohs(address.sin_port);

  // The emergency fd: held open so that under EMFILE the acceptor can
  // close it, accept the waiting connection, shed it politely, and
  // reopen the reserve — instead of spinning on accept() forever.
  reserve_fd_ = ::open("/dev/null", O_RDONLY);

  stopping_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread{[this] { accept_loop(); }};
  if (options_.serve_model == ServeModel::kEpoll) {
    std::string epoll_error;
    if (!epoll_start(&epoll_error)) {
      stop();
      if (error != nullptr) *error = epoll_error;
      return false;
    }
  } else {
    workers_.reserve(static_cast<std::size_t>(options_.worker_threads));
    for (int i = 0; i < options_.worker_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
  return true;
}

void HttpServer::join_all() {
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  loops_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (reserve_fd_ >= 0) {
    ::close(reserve_fd_);
    reserve_fd_ = -1;
  }
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock{queue_mutex_};
    for (const PendingConn& conn : pending_) {
      ::close(conn.fd);
      aborted_->inc();
    }
    pending_.clear();
  }
  queue_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock{active_mutex_};
    for (const int fd : active_fds_) {
      aborted_fds_.insert(fd);
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  wake_loops();
  join_all();
}

DrainReport HttpServer::drain() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Already stopped (or drained): report the recorded counts.
    return DrainReport{.drained = drained_->value(),
                       .aborted = aborted_->value()};
  }
  draining_.store(true, std::memory_order_release);
  static obs::LogSite drain_begin_site{"serve.http", "drain_begin", 0};
  obs::log_event(drain_begin_site, obs::LogLevel::kInfo, 0,
                 {{"deadline_ms", options_.drain_deadline_ms}});

  // Phase 1: stop admitting. Shutting down the listen socket pops the
  // acceptor out of accept(); joining it here means no new connection can
  // race into the queue after this point.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  queue_cv_.notify_all();
  wake_loops();

  // Phase 2: let workers finish the queue and in-flight connections.
  // Keep-alive loops exit after the request they are currently serving
  // (serve_connection checks draining_), so "drained" converges fast for
  // busy connections; idle keep-alives wait here until the deadline.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_deadline_ms);
  for (;;) {
    {
      std::scoped_lock lock{queue_mutex_, active_mutex_};
      if (pending_.empty() && active_fds_.empty()) break;
    }
    if (Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Phase 3: the grace period is over — abort stragglers. Connections
  // still queued were never served at all, so they get the standard shed
  // 503 (Retry-After and all) before the close: from the client's side an
  // aborted-by-drain connection looks exactly like an admission shed,
  // just counted as aborted because it had already been accepted.
  {
    std::lock_guard<std::mutex> lock{queue_mutex_};
    for (const PendingConn& conn : pending_) {
      send_all(conn.fd,
               render_http_response(
                   make_shed_response(options_.retry_after_hint_s), false),
               bytes_written_);
      ::close(conn.fd);
      aborted_->inc();
    }
    pending_.clear();
  }
  {
    std::lock_guard<std::mutex> lock{active_mutex_};
    for (const int fd : active_fds_) {
      aborted_fds_.insert(fd);
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  stopping_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  wake_loops();
  join_all();
  static obs::LogSite drain_done_site{"serve.http", "drain_done", 0};
  obs::log_event(drain_done_site, obs::LogLevel::kInfo, 0,
                 {{"drained", drained_->value()},
                  {"aborted", aborted_->value()}});
  return DrainReport{.drained = drained_->value(),
                     .aborted = aborted_->value()};
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.accepted = accepted_->value();
  stats.requests = requests_->value();
  stats.responses_2xx = responses_2xx_->value();
  stats.responses_4xx = responses_4xx_->value();
  stats.responses_5xx = responses_5xx_->value();
  stats.malformed = malformed_->value();
  stats.timeouts = timeouts_->value();
  stats.overload_rejected = overload_rejected_->value();
  stats.accept_retried = accept_retried_->value();
  stats.emfile_recoveries = emfile_recoveries_->value();
  stats.drained = drained_->value();
  stats.aborted = aborted_->value();
  stats.deadline_exceeded = deadline_exceeded_->value();
  stats.bytes_read = bytes_read_->value();
  stats.bytes_written = bytes_written_->value();
  return stats;
}

std::vector<std::pair<std::string, std::uint64_t>>
HttpServer::deadline_exceeded_by_route() const {
  std::lock_guard<std::mutex> lock{deadline_mutex_};
  std::vector<std::pair<std::string, std::uint64_t>> routes{
      deadline_by_route_.begin(), deadline_by_route_.end()};
  return routes;
}

void HttpServer::note_deadline_exceeded(const std::string& route,
                                        std::uint64_t request_id) {
  deadline_exceeded_->inc();
  static obs::LogSite deadline_site{"serve.http", "deadline_exceeded", 10};
  obs::log_event(deadline_site, obs::LogLevel::kWarn, request_id,
                 {{"route", route}});
  std::lock_guard<std::mutex> lock{deadline_mutex_};
  ++deadline_by_route_[route];
}

/// Answers 503 + Retry-After on a connection we will not serve, then
/// closes it. Used by both shed paths (queue full, fd exhaustion); the
/// drain-time abort of queued connections sends the same bytes.
void HttpServer::shed_connection(int fd) {
  overload_rejected_->inc();
  // Rate-capped: a shed storm is exactly when the log must not flood.
  static obs::LogSite shed_site{"serve.accept", "shed", 10};
  obs::log_event(shed_site, obs::LogLevel::kWarn, 0,
                 {{"pending_cap", options_.max_pending_connections},
                  {"retry_after_s", options_.retry_after_hint_s}});
  send_all(fd,
           render_http_response(make_shed_response(options_.retry_after_hint_s),
                                false),
           bytes_written_);
  ::close(fd);
}

void HttpServer::accept_loop() {
  auto& faults = fault::FaultInjector::instance();
  while (!stopping_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    const int fd = faults.accept(listen_fd_);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire) ||
          draining_.load(std::memory_order_acquire)) {
        break;
      }
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        accept_retried_->inc();
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        // fd exhaustion: free the reserve, accept the waiting connection
        // with it, shed it (503 is better than leaving it in SYN limbo),
        // then restore the reserve. Without this, accept() fails in a
        // hot loop while the backlog never shrinks.
        emfile_recoveries_->inc();
        static obs::LogSite emfile_site{"serve.accept", "emfile_recovery", 10};
        obs::log_event(emfile_site, obs::LogLevel::kError, 0);
        if (reserve_fd_ >= 0) {
          ::close(reserve_fd_);
          reserve_fd_ = -1;
        }
        const int victim = ::accept(listen_fd_, nullptr, nullptr);
        if (victim >= 0) shed_connection(victim);
        reserve_fd_ = ::open("/dev/null", O_RDONLY);
        continue;
      }
      break;  // listen socket is gone; stop() handles the rest
    }
    accepted_->inc();
    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock{queue_mutex_};
      if (pending_.size() >= options_.max_pending_connections) {
        rejected = true;
      } else {
        // The sequence is assigned under the queue lock but only ever
        // written by this (single) acceptor thread; it seeds the
        // connection's deterministic request-id stream.
        pending_.push_back(PendingConn{fd, connection_sequence_++});
      }
    }
    if (rejected) {
      shed_connection(fd);
    } else {
      queue_cv_.notify_one();  // thread-pool workers
      wake_loops();            // epoll loops (no-op for the pool model)
    }
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    PendingConn conn;
    {
      std::unique_lock<std::mutex> lock{queue_mutex_};
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               draining_.load(std::memory_order_acquire) ||
               !pending_.empty();
      });
      if (pending_.empty()) return;  // only reachable when stopping/draining
      conn = pending_.front();
      pending_.pop_front();
    }
    const int fd = conn.fd;
    {
      std::lock_guard<std::mutex> lock{active_mutex_};
      active_fds_.insert(fd);
    }
    serve_connection(fd, conn.sequence);
    bool was_aborted = false;
    {
      std::lock_guard<std::mutex> lock{active_mutex_};
      active_fds_.erase(fd);
      was_aborted = aborted_fds_.erase(fd) > 0;
    }
    if (was_aborted) {
      aborted_->inc();
    } else if (draining_.load(std::memory_order_acquire)) {
      drained_->inc();
    }
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd, std::uint64_t connection_sequence) {
  timeval timeout{};
  timeout.tv_sec = options_.request_timeout_ms / 1000;
  timeout.tv_usec = (options_.request_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto& faults = fault::FaultInjector::instance();
  // The shared assembler owns the carried-over buffer: a recv segment that
  // contains the tail of one request plus pipelined followers keeps the
  // followers buffered across iterations, so nothing is ever dropped
  // between keep-alive requests. The epoll front end feeds the same class.
  RequestAssembler assembler{options_.max_request_bytes};
  assembler.seed_request_ids(connection_sequence);
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    // The deadline covers the whole request: reading it (so a client
    // trickling one byte per socket-timeout cannot hold a worker
    // forever), the handler, and queuing the response.
    const auto started = Clock::now();
    const auto deadline =
        started + std::chrono::milliseconds(options_.request_deadline_ms);

    // ---- assemble one request, reading only when more bytes are needed ----
    HttpRequest request;
    AssemblerStatus status;
    for (;;) {
      status = assembler.next(&request);
      if (status != AssemblerStatus::kNeedMore) break;
      if (assembler.has_partial() && Clock::now() >= deadline) {
        timeouts_->inc();
        note_deadline_exceeded("(read)");
        send_all(fd,
                 render_http_response(
                     HttpResponse::json(
                         408, R"({"error":"request deadline exceeded"})"),
                     false),
                 bytes_written_);
        return;
      }
      const ssize_t n = faults.recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) return;  // peer closed
      if (n < 0) {
        if (errno == EINTR) continue;
        if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
            assembler.has_partial()) {
          // Mid-request stall: answer 408 so the client learns why.
          timeouts_->inc();
          send_all(fd,
                   render_http_response(
                       HttpResponse::json(408,
                                          R"({"error":"request timeout"})"),
                       false),
                   bytes_written_);
        }
        return;
      }
      bytes_read_->add(static_cast<std::uint64_t>(n));
      assembler.feed(chunk, static_cast<std::size_t>(n));
    }
    if (status == AssemblerStatus::kMalformed) {
      malformed_->inc();
      responses_4xx_->inc();
      send_all(fd,
               render_http_response(
                   HttpResponse::json(400, R"({"error":"malformed request"})"),
                   false),
               bytes_written_);
      return;
    }
    if (status == AssemblerStatus::kTooLarge ||
        status == AssemblerStatus::kBodyTooLarge) {
      // Headers that never end within the limit are indistinguishable
      // from garbage (counted malformed); an honest Content-Length over
      // the limit is well-formed, just refused.
      if (status == AssemblerStatus::kTooLarge) malformed_->inc();
      send_all(fd,
               render_http_response(
                   HttpResponse::json(413, R"({"error":"request too large"})"),
                   false),
               bytes_written_);
      return;
    }

    // ---- dispatch + respond ----
    requests_->inc();
    // Latency is measured from dispatch, not from `started`: on an idle
    // keep-alive connection `started` predates the wait for the next
    // request, which is client think time, not server latency.
    const auto dispatch_started = Clock::now();
    const bool tracing = obs::Tracer::instance().enabled();
    const std::uint64_t trace_start_us =
        tracing ? obs::Tracer::instance().to_trace_us(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          dispatch_started.time_since_epoch())
                          .count())
                : 0;
    const HttpResponse response = dispatch(request);
    if (response.status >= 500) {
      responses_5xx_->inc();
    } else if (response.status >= 400) {
      responses_4xx_->inc();
    } else {
      responses_2xx_->inc();
    }
    const auto finished = Clock::now();
    if (finished >= deadline) {
      // The response is still sent (it is ready and the client is live);
      // the overrun is recorded per route so operators can see which
      // endpoints blow their budget.
      note_deadline_exceeded(request.path, request.request_id);
    }
    // During a drain the response closes the connection: keep-alive loops
    // would otherwise pin the drain until its deadline.
    const bool keep_alive = request.keep_alive &&
                            !draining_.load(std::memory_order_acquire) &&
                            !stopping_.load(std::memory_order_acquire);
    const std::string wire = render_http_response(response, keep_alive);
    observe_request(request.path,
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::microseconds>(
                            finished - dispatch_started)
                            .count()),
                    trace_start_us, tracing,
                    RequestObservation{request.request_id, wire.size(), 0});
    if (!send_all(fd, wire, bytes_written_)) {
      return;
    }
    if (!keep_alive) return;
  }
}

void HttpServer::observe_request(const std::string& path,
                                 std::uint64_t duration_us,
                                 std::uint64_t trace_start_us, bool tracing,
                                 const RequestObservation& observation) {
  const auto it = route_latency_.find(path);
  const bool known = it != route_latency_.end();
  const RouteObs& route = known ? it->second : other_route_;
  route.latency->observe(static_cast<double>(duration_us));
  if (tracing) {
    // Request spans are depth-0 roots; the label follows the same
    // closed-set rule as the histograms so traces stay bounded too, and
    // the names are preassembled so tracing adds no allocations here.
    obs::Tracer::instance().record(route.span_name, trace_start_us,
                                   duration_us, /*cpu_us=*/0, /*depth=*/0,
                                   observation.request_id);
  }
  obs::SlowEntry entry;
  entry.request_id = observation.request_id;
  entry.latency_us = duration_us;
  entry.epoch = options_.epoch_supplier ? options_.epoch_supplier() : 0;
  entry.response_bytes = observation.response_bytes;
  entry.flush_stalls = observation.flush_stalls;
  entry.wall_unix_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  if (route.slow->offer(entry)) {
    // A new route-worst request: log it while the id is hot, so /logz
    // joins /slowz even for requests that never erred. Rate-capped — at
    // steady state entering the top-K is rare by definition, but a cold
    // ring would otherwise log every early request.
    static obs::LogSite slow_site{"serve.http", "slow_request", 8};
    const std::string_view route_name =
        known ? std::string_view{path} : std::string_view{"other"};
    obs::log_event(slow_site, obs::LogLevel::kInfo, observation.request_id,
                   {{"route", route_name},
                    {"latency_us", duration_us},
                    {"bytes", observation.response_bytes},
                    {"flush_stalls", observation.flush_stalls},
                    {"epoch", entry.epoch}});
  }
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) {
  const auto route = [&]() -> HttpResponse {
    if (request.path == "/healthz") {
      return HttpResponse::json(200, R"({"status":"ok"})");
    }
    if (request.path == "/statsz") {
      return HttpResponse::json(200, statsz_body());
    }
    if (request.path == "/metricsz") {
      HttpResponse response = HttpResponse::json(200, metricsz_body());
      response.content_type = obs::kPrometheusContentType;
      return response;
    }
    if (request.path == "/tracez") {
      return HttpResponse::json(200, tracez_body(request));
    }
    if (request.path == "/logz") {
      return HttpResponse::json(200, logz_body(request));
    }
    if (request.path == "/slowz") {
      return HttpResponse::json(200, slowz_body());
    }
    if (request.method != "GET" && request.method != "POST") {
      return HttpResponse::json(405, R"({"error":"method not allowed"})");
    }
    if (!handler_) {
      return HttpResponse::json(404, R"({"error":"no handler registered"})");
    }
    return handler_(request);
  };
  HttpResponse response = route();
  // Every dispatched response — handler or built-in, success or error —
  // echoes its request id. This is the join key across /slowz, /tracez,
  // /logz, and whatever the client logged on its side.
  response.headers.emplace_back("X-Request-Id",
                                obs::format_request_id(request.request_id));
  return response;
}

std::string HttpServer::metricsz_body() const {
  // One exposition covers this server's registry, the process-global one
  // (pool, stages, reloads, faults), and any scrape-time supplement.
  std::vector<obs::MetricSnapshot> snapshots = metrics_.snapshot();
  std::vector<obs::MetricSnapshot> global =
      obs::MetricsRegistry::global().snapshot();
  snapshots.insert(snapshots.end(),
                   std::make_move_iterator(global.begin()),
                   std::make_move_iterator(global.end()));
  // Ring-health counters live in the tracer/log structures themselves;
  // surface them as scrape-time series so dashboards can alert on
  // observability data loss.
  const auto scrape_counter = [&snapshots](std::string name, std::string help,
                                           std::uint64_t value) {
    obs::MetricSnapshot snapshot;
    snapshot.name = std::move(name);
    snapshot.help = std::move(help);
    snapshot.type = obs::MetricType::kCounter;
    snapshot.value = static_cast<double>(value);
    snapshots.push_back(std::move(snapshot));
  };
  scrape_counter("asrel_trace_dropped_total",
                 "Trace spans overwritten after their ring filled",
                 obs::Tracer::instance().dropped());
  scrape_counter("asrel_log_dropped_total",
                 "Log events overwritten after their ring filled",
                 obs::EventLog::instance().dropped());
  scrape_counter("asrel_log_suppressed_total",
                 "Log events refused by per-site rate caps",
                 obs::EventLog::instance().suppressed());
  if (options_.metrics_supplement) options_.metrics_supplement(snapshots);
  return obs::render_prometheus(std::move(snapshots));
}

std::string HttpServer::tracez_body(const HttpRequest& request) const {
  std::size_t n = options_.tracez_default_spans;
  if (const std::string* param = request.query_param("n")) {
    const long parsed = std::strtol(param->c_str(), nullptr, 10);
    if (parsed > 0) n = static_cast<std::size_t>(parsed);
  }
  n = std::min<std::size_t>(n, 16384);
  // ?route=/rel narrows to that route's request spans ("http /rel");
  // ?id=<hex> narrows to one request. Both filters apply after the
  // recency cut, matching how an operator works: pull a window, then
  // grep it down.
  std::string span_name_filter;
  if (const std::string* route = request.query_param("route")) {
    span_name_filter = "http " + *route;
  }
  std::uint64_t id_filter = 0;
  if (const std::string* id = request.query_param("id")) {
    (void)obs::parse_request_id(*id, &id_filter);
  }
  const auto& tracer = obs::Tracer::instance();
  const std::vector<obs::SpanRecord> spans = tracer.recent(n);
  JsonWriter json;
  json.begin_object();
  json.field("enabled", tracer.enabled());
  json.field("dropped", tracer.dropped());
  json.key("spans").begin_array();
  for (const obs::SpanRecord& span : spans) {
    if (!span_name_filter.empty() && span.name != span_name_filter) continue;
    if (id_filter != 0 && span.request_id != id_filter) continue;
    json.begin_object();
    json.field("name", span.name);
    json.field("start_us", span.start_us);
    json.field("dur_us", span.dur_us);
    json.field("cpu_us", span.cpu_us);
    json.field("tid", span.tid);
    json.field("depth", span.depth);
    json.field("seq", span.seq);
    if (span.request_id != 0) {
      json.field("request_id", obs::format_request_id(span.request_id));
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

std::string HttpServer::logz_body(const HttpRequest& request) const {
  std::size_t n = options_.logz_default_events;
  if (const std::string* param = request.query_param("n")) {
    const long parsed = std::strtol(param->c_str(), nullptr, 10);
    if (parsed > 0) n = static_cast<std::size_t>(parsed);
  }
  n = std::min<std::size_t>(n, 16384);
  std::uint64_t id_filter = 0;
  if (const std::string* id = request.query_param("id")) {
    (void)obs::parse_request_id(*id, &id_filter);
  }
  const obs::EventLog& log = obs::EventLog::instance();
  JsonWriter json;
  json.begin_object();
  json.field("enabled", log.enabled());
  json.field("dropped", log.dropped());
  json.field("suppressed", log.suppressed());
  json.key("events").begin_array();
  std::string rendered;
  for (const obs::LogEvent& event : log.recent(n)) {
    if (id_filter != 0 && event.request_id != id_filter) continue;
    rendered.clear();
    obs::EventLog::render_event(event, rendered);
    json.raw(rendered);
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

std::string HttpServer::slowz_body() const {
  // Deterministic route order (sorted), entries slowest-first within each
  // route (SlowRing::snapshot's contract).
  std::vector<const std::string*> routes;
  routes.reserve(route_latency_.size());
  for (const auto& [route, _] : route_latency_) routes.push_back(&route);
  std::sort(routes.begin(), routes.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  JsonWriter json;
  json.begin_object();
  json.field("capacity",
             static_cast<std::uint64_t>(options_.slow_ring_capacity));
  json.key("routes").begin_object();
  const auto render_route = [&json](const std::string& name,
                                    const obs::SlowRing& ring) {
    json.key(name).begin_array();
    for (const obs::SlowEntry& entry : ring.snapshot()) {
      json.begin_object();
      json.field("request_id", obs::format_request_id(entry.request_id));
      json.field("latency_us", entry.latency_us);
      json.field("epoch", entry.epoch);
      json.field("bytes", entry.response_bytes);
      json.field("flush_stalls", entry.flush_stalls);
      json.field("ts_ms", entry.wall_unix_ms);
      json.end_object();
    }
    json.end_array();
  };
  for (const std::string* route : routes) {
    render_route(*route, *route_latency_.at(*route).slow);
  }
  render_route("other", *other_route_.slow);
  json.end_object();
  json.end_object();
  return std::move(json).str();
}

std::string HttpServer::statsz_body() const {
  const HttpServerStats s = stats();
  JsonWriter json;
  json.begin_object();
  json.key("requests").begin_object();
  json.field("accepted_connections", s.accepted);
  json.field("total", s.requests);
  json.field("responses_2xx", s.responses_2xx);
  json.field("responses_4xx", s.responses_4xx);
  json.field("responses_5xx", s.responses_5xx);
  json.field("malformed", s.malformed);
  json.field("timeouts", s.timeouts);
  json.field("bytes_read", s.bytes_read);
  json.field("bytes_written", s.bytes_written);
  json.end_object();
  json.key("resilience").begin_object();
  json.field("shed", s.overload_rejected);
  json.field("accept_retried", s.accept_retried);
  json.field("emfile_recoveries", s.emfile_recoveries);
  json.field("drained", s.drained);
  json.field("aborted", s.aborted);
  json.field("deadline_exceeded", s.deadline_exceeded);
  json.key("deadline_exceeded_by_route").begin_object();
  for (const auto& [route, count] : deadline_exceeded_by_route()) {
    json.field(route, count);
  }
  json.end_object();
  json.end_object();
  json.field("workers", options_.worker_threads);
  if (options_.stats_supplement) {
    const std::string extra = options_.stats_supplement();
    if (!extra.empty()) json.key("app").raw(extra);
  }
  json.end_object();
  return std::move(json).str();
}

}  // namespace asrel::serve
