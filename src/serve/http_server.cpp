#include "serve/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "serve/json.hpp"

namespace asrel::serve {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

/// Sends the whole buffer, tolerating partial writes. MSG_NOSIGNAL keeps a
/// dead peer from raising SIGPIPE.
bool send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string render_response(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_text(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options)) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.max_pending_connections < 1) {
    options_.max_pending_connections = 1;
  }
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket()");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_ANY);
  address.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return fail("bind()");
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    return fail("listen()");
  }
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    return fail("getsockname()");
  }
  bound_port_ = ntohs(address.sin_port);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread{[this] { accept_loop(); }};
  workers_.reserve(static_cast<std::size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock{queue_mutex_};
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
  }
  queue_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock{active_mutex_};
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses_2xx = responses_2xx_.load(std::memory_order_relaxed);
  stats.responses_4xx = responses_4xx_.load(std::memory_order_relaxed);
  stats.responses_5xx = responses_5xx_.load(std::memory_order_relaxed);
  stats.malformed = malformed_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  stats.overload_rejected = overload_rejected_.load(std::memory_order_relaxed);
  return stats;
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket is gone; stop() handles the rest
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock{queue_mutex_};
      if (pending_.size() >= options_.max_pending_connections) {
        rejected = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (rejected) {
      overload_rejected_.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, render_response(
                       HttpResponse::json(
                           503, R"({"error":"server overloaded"})"),
                       false));
      ::close(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock{queue_mutex_};
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) return;  // only reachable when stopping
      fd = pending_.front();
      pending_.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock{active_mutex_};
      active_fds_.insert(fd);
    }
    serve_connection(fd);
    {
      std::lock_guard<std::mutex> lock{active_mutex_};
      active_fds_.erase(fd);
    }
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  timeval timeout{};
  timeout.tv_sec = options_.request_timeout_ms / 1000;
  timeout.tv_usec = (options_.request_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    // ---- read one request's header block ----
    std::size_t header_len = 0;
    std::size_t body_start = find_header_end(buffer, &header_len);
    while (body_start == std::string::npos) {
      if (buffer.size() > options_.max_request_bytes) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        send_all(fd, render_response(
                         HttpResponse::json(
                             413, R"({"error":"request too large"})"),
                         false));
        return;
      }
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) return;  // peer closed
      if (n < 0) {
        if (errno == EINTR) continue;
        if ((errno == EAGAIN || errno == EWOULDBLOCK) && !buffer.empty()) {
          // Mid-request stall: answer 408 so the client learns why.
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          send_all(fd, render_response(
                           HttpResponse::json(
                               408, R"({"error":"request timeout"})"),
                           false));
        }
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      body_start = find_header_end(buffer, &header_len);
    }

    // ---- parse ----
    HttpRequest request;
    const HttpParse parsed = parse_http_request(
        std::string_view{buffer}.substr(0, header_len), &request);
    if (!parsed) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      responses_4xx_.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, render_response(
                       HttpResponse::json(
                           400, R"({"error":"malformed request"})"),
                       false));
      return;
    }
    const std::size_t content_length = parsed.content_length;

    // ---- drain (and ignore) any body ----
    if (content_length > options_.max_request_bytes) {
      send_all(fd, render_response(
                       HttpResponse::json(
                           413, R"({"error":"request too large"})"),
                       false));
      return;
    }
    std::size_t body_have = buffer.size() - body_start;
    while (body_have < content_length) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return;
      body_have += static_cast<std::size_t>(n);
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    buffer.erase(0, body_start + content_length);

    // ---- dispatch + respond ----
    requests_.fetch_add(1, std::memory_order_relaxed);
    const HttpResponse response = dispatch(request);
    if (response.status >= 500) {
      responses_5xx_.fetch_add(1, std::memory_order_relaxed);
    } else if (response.status >= 400) {
      responses_4xx_.fetch_add(1, std::memory_order_relaxed);
    } else {
      responses_2xx_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!send_all(fd, render_response(response, request.keep_alive))) return;
    if (!request.keep_alive) return;
  }
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) {
  if (request.method != "GET") {
    return HttpResponse::json(405, R"({"error":"only GET is supported"})");
  }
  if (request.path == "/healthz") {
    return HttpResponse::json(200, R"({"status":"ok"})");
  }
  if (request.path == "/statsz") {
    return HttpResponse::json(200, statsz_body());
  }
  if (!handler_) {
    return HttpResponse::json(404, R"({"error":"no handler registered"})");
  }
  return handler_(request);
}

std::string HttpServer::statsz_body() const {
  const HttpServerStats s = stats();
  JsonWriter json;
  json.begin_object();
  json.key("requests").begin_object();
  json.field("accepted_connections", s.accepted);
  json.field("total", s.requests);
  json.field("responses_2xx", s.responses_2xx);
  json.field("responses_4xx", s.responses_4xx);
  json.field("responses_5xx", s.responses_5xx);
  json.field("malformed", s.malformed);
  json.field("timeouts", s.timeouts);
  json.field("overload_rejected", s.overload_rejected);
  json.end_object();
  json.field("workers", options_.worker_threads);
  if (options_.stats_supplement) {
    const std::string extra = options_.stats_supplement();
    if (!extra.empty()) json.key("app").raw(extra);
  }
  json.end_object();
  return std::move(json).str();
}

}  // namespace asrel::serve
