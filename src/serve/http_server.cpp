#include "serve/http_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "serve/fault_inject.hpp"
#include "serve/json.hpp"

namespace asrel::serve {

namespace {

using Clock = std::chrono::steady_clock;

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

/// Sends the whole buffer, tolerating partial writes and EINTR. Routed
/// through the fault injector so chaos tests can force short writes.
/// MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE.
bool send_all(int fd, std::string_view bytes) {
  auto& faults = fault::FaultInjector::instance();
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = faults.send(fd, bytes.data() + sent,
                                  bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string render_response(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(160 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_text(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  for (const auto& [name, value] : response.headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options)) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.max_pending_connections < 1) {
    options_.max_pending_connections = 1;
  }
  if (options_.request_deadline_ms < 1) options_.request_deadline_ms = 1;
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket()");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_ANY);
  address.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return fail("bind()");
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    return fail("listen()");
  }
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    return fail("getsockname()");
  }
  bound_port_ = ntohs(address.sin_port);

  // The emergency fd: held open so that under EMFILE the acceptor can
  // close it, accept the waiting connection, shed it politely, and
  // reopen the reserve — instead of spinning on accept() forever.
  reserve_fd_ = ::open("/dev/null", O_RDONLY);

  stopping_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread{[this] { accept_loop(); }};
  workers_.reserve(static_cast<std::size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void HttpServer::join_all() {
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (reserve_fd_ >= 0) {
    ::close(reserve_fd_);
    reserve_fd_ = -1;
  }
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock{queue_mutex_};
    for (const int fd : pending_) {
      ::close(fd);
      aborted_.fetch_add(1, std::memory_order_relaxed);
    }
    pending_.clear();
  }
  queue_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock{active_mutex_};
    for (const int fd : active_fds_) {
      aborted_fds_.insert(fd);
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  join_all();
}

DrainReport HttpServer::drain() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Already stopped (or drained): report the recorded counts.
    return DrainReport{.drained = drained_.load(std::memory_order_relaxed),
                       .aborted = aborted_.load(std::memory_order_relaxed)};
  }
  draining_.store(true, std::memory_order_release);

  // Phase 1: stop admitting. Shutting down the listen socket pops the
  // acceptor out of accept(); joining it here means no new connection can
  // race into the queue after this point.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  queue_cv_.notify_all();

  // Phase 2: let workers finish the queue and in-flight connections.
  // Keep-alive loops exit after the request they are currently serving
  // (serve_connection checks draining_), so "drained" converges fast for
  // busy connections; idle keep-alives wait here until the deadline.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_deadline_ms);
  for (;;) {
    {
      std::scoped_lock lock{queue_mutex_, active_mutex_};
      if (pending_.empty() && active_fds_.empty()) break;
    }
    if (Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Phase 3: the grace period is over — abort stragglers.
  {
    std::lock_guard<std::mutex> lock{queue_mutex_};
    for (const int fd : pending_) {
      ::close(fd);
      aborted_.fetch_add(1, std::memory_order_relaxed);
    }
    pending_.clear();
  }
  {
    std::lock_guard<std::mutex> lock{active_mutex_};
    for (const int fd : active_fds_) {
      aborted_fds_.insert(fd);
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  stopping_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  join_all();
  return DrainReport{.drained = drained_.load(std::memory_order_relaxed),
                     .aborted = aborted_.load(std::memory_order_relaxed)};
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses_2xx = responses_2xx_.load(std::memory_order_relaxed);
  stats.responses_4xx = responses_4xx_.load(std::memory_order_relaxed);
  stats.responses_5xx = responses_5xx_.load(std::memory_order_relaxed);
  stats.malformed = malformed_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  stats.overload_rejected = overload_rejected_.load(std::memory_order_relaxed);
  stats.accept_retried = accept_retried_.load(std::memory_order_relaxed);
  stats.emfile_recoveries =
      emfile_recoveries_.load(std::memory_order_relaxed);
  stats.drained = drained_.load(std::memory_order_relaxed);
  stats.aborted = aborted_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<std::pair<std::string, std::uint64_t>>
HttpServer::deadline_exceeded_by_route() const {
  std::lock_guard<std::mutex> lock{deadline_mutex_};
  std::vector<std::pair<std::string, std::uint64_t>> routes{
      deadline_by_route_.begin(), deadline_by_route_.end()};
  return routes;
}

void HttpServer::note_deadline_exceeded(const std::string& route) {
  deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock{deadline_mutex_};
  ++deadline_by_route_[route];
}

/// Answers 503 + Retry-After on a connection we will not serve, then
/// closes it. Used by both shed paths (queue full, fd exhaustion).
void HttpServer::shed_connection(int fd) {
  overload_rejected_.fetch_add(1, std::memory_order_relaxed);
  HttpResponse response =
      HttpResponse::json(503, R"({"error":"server overloaded"})");
  response.headers.emplace_back("Retry-After",
                                std::to_string(options_.retry_after_hint_s));
  send_all(fd, render_response(response, false));
  ::close(fd);
}

void HttpServer::accept_loop() {
  auto& faults = fault::FaultInjector::instance();
  while (!stopping_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    const int fd = faults.accept(listen_fd_);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire) ||
          draining_.load(std::memory_order_acquire)) {
        break;
      }
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        accept_retried_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        // fd exhaustion: free the reserve, accept the waiting connection
        // with it, shed it (503 is better than leaving it in SYN limbo),
        // then restore the reserve. Without this, accept() fails in a
        // hot loop while the backlog never shrinks.
        emfile_recoveries_.fetch_add(1, std::memory_order_relaxed);
        if (reserve_fd_ >= 0) {
          ::close(reserve_fd_);
          reserve_fd_ = -1;
        }
        const int victim = ::accept(listen_fd_, nullptr, nullptr);
        if (victim >= 0) shed_connection(victim);
        reserve_fd_ = ::open("/dev/null", O_RDONLY);
        continue;
      }
      break;  // listen socket is gone; stop() handles the rest
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock{queue_mutex_};
      if (pending_.size() >= options_.max_pending_connections) {
        rejected = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (rejected) {
      shed_connection(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock{queue_mutex_};
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               draining_.load(std::memory_order_acquire) ||
               !pending_.empty();
      });
      if (pending_.empty()) return;  // only reachable when stopping/draining
      fd = pending_.front();
      pending_.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock{active_mutex_};
      active_fds_.insert(fd);
    }
    serve_connection(fd);
    bool was_aborted = false;
    {
      std::lock_guard<std::mutex> lock{active_mutex_};
      active_fds_.erase(fd);
      was_aborted = aborted_fds_.erase(fd) > 0;
    }
    if (was_aborted) {
      aborted_.fetch_add(1, std::memory_order_relaxed);
    } else if (draining_.load(std::memory_order_acquire)) {
      drained_.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  timeval timeout{};
  timeout.tv_sec = options_.request_timeout_ms / 1000;
  timeout.tv_usec = (options_.request_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto& faults = fault::FaultInjector::instance();
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    // The deadline covers the whole request: reading it (so a client
    // trickling one byte per socket-timeout cannot hold a worker
    // forever), the handler, and queuing the response.
    const auto started = Clock::now();
    const auto deadline =
        started + std::chrono::milliseconds(options_.request_deadline_ms);

    const auto read_deadline_exceeded = [&] {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      note_deadline_exceeded("(read)");
      send_all(fd, render_response(
                       HttpResponse::json(
                           408, R"({"error":"request deadline exceeded"})"),
                       false));
    };

    // ---- read one request's header block ----
    std::size_t header_len = 0;
    std::size_t body_start = find_header_end(buffer, &header_len);
    while (body_start == std::string::npos) {
      if (buffer.size() > options_.max_request_bytes) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        send_all(fd, render_response(
                         HttpResponse::json(
                             413, R"({"error":"request too large"})"),
                         false));
        return;
      }
      if (!buffer.empty() && Clock::now() >= deadline) {
        read_deadline_exceeded();
        return;
      }
      const ssize_t n = faults.recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) return;  // peer closed
      if (n < 0) {
        if (errno == EINTR) continue;
        if ((errno == EAGAIN || errno == EWOULDBLOCK) && !buffer.empty()) {
          // Mid-request stall: answer 408 so the client learns why.
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          send_all(fd, render_response(
                           HttpResponse::json(
                               408, R"({"error":"request timeout"})"),
                           false));
        }
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      body_start = find_header_end(buffer, &header_len);
    }

    // ---- parse ----
    HttpRequest request;
    const HttpParse parsed = parse_http_request(
        std::string_view{buffer}.substr(0, header_len), &request);
    if (!parsed) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      responses_4xx_.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, render_response(
                       HttpResponse::json(
                           400, R"({"error":"malformed request"})"),
                       false));
      return;
    }
    const std::size_t content_length = parsed.content_length;

    // ---- drain (and ignore) any body ----
    if (content_length > options_.max_request_bytes) {
      send_all(fd, render_response(
                       HttpResponse::json(
                           413, R"({"error":"request too large"})"),
                       false));
      return;
    }
    std::size_t body_have = buffer.size() - body_start;
    while (body_have < content_length) {
      if (Clock::now() >= deadline) {
        read_deadline_exceeded();
        return;
      }
      const ssize_t n = faults.recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) return;
      if (n < 0) {
        if (errno == EINTR) continue;
        return;
      }
      body_have += static_cast<std::size_t>(n);
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    buffer.erase(0, body_start + content_length);

    // ---- dispatch + respond ----
    requests_.fetch_add(1, std::memory_order_relaxed);
    const HttpResponse response = dispatch(request);
    if (response.status >= 500) {
      responses_5xx_.fetch_add(1, std::memory_order_relaxed);
    } else if (response.status >= 400) {
      responses_4xx_.fetch_add(1, std::memory_order_relaxed);
    } else {
      responses_2xx_.fetch_add(1, std::memory_order_relaxed);
    }
    if (Clock::now() >= deadline) {
      // The response is still sent (it is ready and the client is live);
      // the overrun is recorded per route so operators can see which
      // endpoints blow their budget.
      note_deadline_exceeded(request.path);
    }
    // During a drain the response closes the connection: keep-alive loops
    // would otherwise pin the drain until its deadline.
    const bool keep_alive = request.keep_alive &&
                            !draining_.load(std::memory_order_acquire) &&
                            !stopping_.load(std::memory_order_acquire);
    if (!send_all(fd, render_response(response, keep_alive))) return;
    if (!keep_alive) return;
  }
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) {
  if (request.path == "/healthz") {
    return HttpResponse::json(200, R"({"status":"ok"})");
  }
  if (request.path == "/statsz") {
    return HttpResponse::json(200, statsz_body());
  }
  if (request.method != "GET" && request.method != "POST") {
    return HttpResponse::json(405, R"({"error":"method not allowed"})");
  }
  if (!handler_) {
    return HttpResponse::json(404, R"({"error":"no handler registered"})");
  }
  return handler_(request);
}

std::string HttpServer::statsz_body() const {
  const HttpServerStats s = stats();
  JsonWriter json;
  json.begin_object();
  json.key("requests").begin_object();
  json.field("accepted_connections", s.accepted);
  json.field("total", s.requests);
  json.field("responses_2xx", s.responses_2xx);
  json.field("responses_4xx", s.responses_4xx);
  json.field("responses_5xx", s.responses_5xx);
  json.field("malformed", s.malformed);
  json.field("timeouts", s.timeouts);
  json.end_object();
  json.key("resilience").begin_object();
  json.field("shed", s.overload_rejected);
  json.field("accept_retried", s.accept_retried);
  json.field("emfile_recoveries", s.emfile_recoveries);
  json.field("drained", s.drained);
  json.field("aborted", s.aborted);
  json.field("deadline_exceeded", s.deadline_exceeded);
  json.key("deadline_exceeded_by_route").begin_object();
  for (const auto& [route, count] : deadline_exceeded_by_route()) {
    json.field(route, count);
  }
  json.end_object();
  json.end_object();
  json.field("workers", options_.worker_threads);
  if (options_.stats_supplement) {
    const std::string extra = options_.stats_supplement();
    if (!extra.empty()) json.key("app").raw(extra);
  }
  json.end_object();
  return std::move(json).str();
}

}  // namespace asrel::serve
