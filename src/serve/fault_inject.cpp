#include "serve/fault_inject.hpp"

#include <sys/socket.h>
#include <sys/uio.h>

#include <array>
#include <cerrno>
#include <string>

#include "io/snapshot.hpp"
#include "obs/metrics.hpp"

namespace asrel::serve::fault {

namespace {

/// SplitMix64 — the same generator src/testing uses; one full scramble of
/// a 64-bit state is enough to decorrelate (seed, site, n) triples.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

/// Mirrors each injected fault into the global registry so /metricsz can
/// show chaos activity per site without polling FaultStats.
namespace {

void note_injected(Site site) {
  static std::array<obs::Counter*, static_cast<std::size_t>(Site::kCount)>
      counters = [] {
        std::array<obs::Counter*, static_cast<std::size_t>(Site::kCount)> c{};
        for (std::size_t i = 0; i < c.size(); ++i) {
          c[i] = &obs::MetricsRegistry::global().counter(
              std::string{"asrel_fault_injected_total{site=\""} +
                  site_name(static_cast<Site>(i)) + "\"}",
              "Faults injected by the chaos layer, per syscall site");
        }
        return c;
      }();
  counters[static_cast<std::size_t>(site)]->inc();
}

}  // namespace

const char* site_name(Site site) {
  switch (site) {
    case Site::kAccept:
      return "accept";
    case Site::kRecv:
      return "recv";
    case Site::kSend:
      return "send";
    case Site::kSnapshotRead:
      return "snapshot_read";
    case Site::kSnapshotWrite:
      return "snapshot_write";
    case Site::kCheckpointRead:
      return "checkpoint_read";
    case Site::kCheckpointWrite:
      return "checkpoint_write";
    case Site::kStreamApply:
      return "stream_apply";
    case Site::kStreamDivergence:
      return "stream_divergence";
    case Site::kWritev:
      return "writev";
    case Site::kCount:
      break;
  }
  return "?";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

std::uint32_t FaultInjector::draw(std::uint64_t seed, Site site,
                                  std::uint64_t n) {
  // Two scramble rounds: the first mixes the site into the seed stream,
  // the second mixes the call index, so neighboring (site, n) pairs share
  // no low-bit structure.
  const std::uint64_t mixed =
      splitmix64(splitmix64(seed + static_cast<std::uint64_t>(site) *
                                       0x9e3779b97f4a7c15ull) +
                 n);
  return static_cast<std::uint32_t>(mixed % 1000);
}

std::uint32_t FaultInjector::next_draw(Site site) {
  const std::uint64_t n = calls_[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  return draw(plan_.seed, site, n);
}

void FaultInjector::arm(const FaultPlan& plan) {
  disarm();  // quiesce wrappers while the plan is being replaced
  plan_ = plan;
  for (auto& counter : calls_) counter.store(0, std::memory_order_relaxed);
  accept_faults_.store(0, std::memory_order_relaxed);
  recv_faults_.store(0, std::memory_order_relaxed);
  send_faults_.store(0, std::memory_order_relaxed);
  snapshot_read_faults_.store(0, std::memory_order_relaxed);
  snapshot_write_faults_.store(0, std::memory_order_relaxed);
  checkpoint_read_faults_.store(0, std::memory_order_relaxed);
  checkpoint_write_faults_.store(0, std::memory_order_relaxed);
  stream_apply_faults_.store(0, std::memory_order_relaxed);
  stream_divergence_faults_.store(0, std::memory_order_relaxed);
  writev_faults_.store(0, std::memory_order_relaxed);
  io::set_snapshot_io_hooks(io::SnapshotIoHooks{
      .read_cap = [] { return FaultInjector::instance().snapshot_read_cap(); },
      .write_cap =
          [] { return FaultInjector::instance().snapshot_write_cap(); },
  });
  enabled_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() {
  enabled_.store(false, std::memory_order_release);
  io::set_snapshot_io_hooks(io::SnapshotIoHooks{});
}

FaultStats FaultInjector::stats() const {
  FaultStats stats;
  stats.accept_faults = accept_faults_.load(std::memory_order_relaxed);
  stats.recv_faults = recv_faults_.load(std::memory_order_relaxed);
  stats.send_faults = send_faults_.load(std::memory_order_relaxed);
  stats.snapshot_read_faults =
      snapshot_read_faults_.load(std::memory_order_relaxed);
  stats.snapshot_write_faults =
      snapshot_write_faults_.load(std::memory_order_relaxed);
  stats.checkpoint_read_faults =
      checkpoint_read_faults_.load(std::memory_order_relaxed);
  stats.checkpoint_write_faults =
      checkpoint_write_faults_.load(std::memory_order_relaxed);
  stats.stream_apply_faults =
      stream_apply_faults_.load(std::memory_order_relaxed);
  stats.stream_divergence_faults =
      stream_divergence_faults_.load(std::memory_order_relaxed);
  stats.writev_faults = writev_faults_.load(std::memory_order_relaxed);
  return stats;
}

ssize_t FaultInjector::recv(int fd, void* buf, std::size_t len, int flags) {
  if (!enabled()) return ::recv(fd, buf, len, flags);
  const std::uint32_t roll = next_draw(Site::kRecv);
  // Bands are stacked so one draw picks at most one fault; rates add up.
  std::uint32_t band = plan_.recv_eintr_permille;
  if (roll < band) {
    recv_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kRecv);
    errno = EINTR;
    return -1;
  }
  band += plan_.recv_eagain_permille;
  if (roll < band) {
    recv_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kRecv);
    errno = EAGAIN;
    return -1;
  }
  band += plan_.recv_short_permille;
  if (roll < band && len > 1) {
    recv_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kRecv);
    return ::recv(fd, buf, 1, flags);  // short read: one byte at a time
  }
  return ::recv(fd, buf, len, flags);
}

ssize_t FaultInjector::send(int fd, const void* buf, std::size_t len,
                            int flags) {
  if (!enabled()) return ::send(fd, buf, len, flags);
  const std::uint32_t roll = next_draw(Site::kSend);
  std::uint32_t band = plan_.send_eintr_permille;
  if (roll < band) {
    send_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kSend);
    errno = EINTR;
    return -1;
  }
  band += plan_.send_short_permille;
  if (roll < band && len > 1) {
    send_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kSend);
    return ::send(fd, buf, 1, flags);  // short write
  }
  return ::send(fd, buf, len, flags);
}

namespace {

/// Gather-write via sendmsg so MSG_NOSIGNAL applies: a peer that died
/// mid-flush must surface as EPIPE, not SIGPIPE (plain writev has no
/// per-call signal suppression).
ssize_t raw_writev(int fd, const struct iovec* iov, int iovcnt) {
  msghdr message{};
  message.msg_iov = const_cast<struct iovec*>(iov);
  message.msg_iovlen = static_cast<std::size_t>(iovcnt);
  return ::sendmsg(fd, &message, MSG_NOSIGNAL);
}

}  // namespace

ssize_t FaultInjector::writev(int fd, const struct iovec* iov, int iovcnt) {
  if (!enabled()) return raw_writev(fd, iov, iovcnt);
  const std::uint32_t roll = next_draw(Site::kWritev);
  std::uint32_t band = plan_.writev_eintr_permille;
  if (roll < band) {
    writev_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kWritev);
    errno = EINTR;
    return -1;
  }
  band += plan_.writev_short_permille;
  if (roll < band && iovcnt > 0 && iov[0].iov_len > 0) {
    // Torn flush: persist a single byte of the first fragment so the
    // caller must resume mid-iovec.
    writev_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kWritev);
    struct iovec one = iov[0];
    one.iov_len = 1;
    return raw_writev(fd, &one, 1);
  }
  return raw_writev(fd, iov, iovcnt);
}

int FaultInjector::accept(int fd) {
  if (!enabled()) return ::accept(fd, nullptr, nullptr);
  const std::uint32_t roll = next_draw(Site::kAccept);
  std::uint32_t band = plan_.accept_eintr_permille;
  if (roll < band) {
    accept_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kAccept);
    errno = EINTR;
    return -1;
  }
  band += plan_.accept_econnaborted_permille;
  if (roll < band) {
    accept_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kAccept);
    errno = ECONNABORTED;
    return -1;
  }
  band += plan_.accept_emfile_permille;
  if (roll < band) {
    accept_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kAccept);
    errno = EMFILE;
    return -1;
  }
  return ::accept(fd, nullptr, nullptr);
}

std::size_t FaultInjector::snapshot_read_cap() {
  if (!enabled()) return static_cast<std::size_t>(-1);
  if (plan_.snapshot_read_cap != static_cast<std::size_t>(-1)) {
    snapshot_read_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kSnapshotRead);
  }
  return plan_.snapshot_read_cap;
}

std::size_t FaultInjector::snapshot_write_cap() {
  if (!enabled()) return static_cast<std::size_t>(-1);
  if (plan_.snapshot_write_cap != static_cast<std::size_t>(-1)) {
    snapshot_write_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kSnapshotWrite);
  }
  return plan_.snapshot_write_cap;
}

std::size_t FaultInjector::checkpoint_read_cap() {
  if (!enabled()) return static_cast<std::size_t>(-1);
  if (plan_.checkpoint_read_cap != static_cast<std::size_t>(-1)) {
    checkpoint_read_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kCheckpointRead);
  }
  return plan_.checkpoint_read_cap;
}

std::size_t FaultInjector::checkpoint_write_cap() {
  if (!enabled()) return static_cast<std::size_t>(-1);
  if (plan_.checkpoint_write_cap != static_cast<std::size_t>(-1)) {
    checkpoint_write_faults_.fetch_add(1, std::memory_order_relaxed);
    note_injected(Site::kCheckpointWrite);
  }
  return plan_.checkpoint_write_cap;
}

bool FaultInjector::stream_apply_should_fail() {
  if (!enabled() || plan_.stream_apply_fail_permille == 0) return false;
  if (next_draw(Site::kStreamApply) >= plan_.stream_apply_fail_permille) {
    return false;
  }
  stream_apply_faults_.fetch_add(1, std::memory_order_relaxed);
  note_injected(Site::kStreamApply);
  return true;
}

bool FaultInjector::stream_divergence_should_seed() {
  if (!enabled() || plan_.stream_divergence_permille == 0) return false;
  if (next_draw(Site::kStreamDivergence) >=
      plan_.stream_divergence_permille) {
    return false;
  }
  stream_divergence_faults_.fetch_add(1, std::memory_order_relaxed);
  note_injected(Site::kStreamDivergence);
  return true;
}

}  // namespace asrel::serve::fault
