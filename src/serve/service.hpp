// HTTP routing for the query engine: maps paths + query strings onto
// QueryEngine calls and renders the answers as JSON. Kept separate from
// HttpServer so tests can exercise the routes without sockets, and from
// QueryEngine so the engine stays transport-agnostic.
//
// Routes (all GET):
//   /rel?a=ASN&b=ASN        point lookup: truth + verdicts + validation
//   /as?asn=ASN             per-AS summary card
//   /links?limit=N          deterministic sample of visible links
//   /report/regional        Fig. 1 coverage (cached)
//   /report/topological     Fig. 2 coverage (cached)
//   /report/table?algo=A    Tables 1-3 for algorithm A (cached)
//   /snapshot               snapshot provenance + section sizes
// (/healthz and /statsz are answered by HttpServer itself.)
#pragma once

#include <memory>
#include <string>

#include "serve/http_server.hpp"
#include "serve/query_engine.hpp"

namespace asrel::serve {

class AsrelService {
 public:
  explicit AsrelService(std::shared_ptr<const QueryEngine> engine)
      : engine_(std::move(engine)) {}

  /// The HttpServer handler.
  [[nodiscard]] HttpResponse handle(const HttpRequest& request) const;

  /// JSON object with engine-side stats, for HttpServer's /statsz
  /// supplement hook.
  [[nodiscard]] std::string stats_json() const;

  [[nodiscard]] const QueryEngine& engine() const { return *engine_; }

 private:
  std::shared_ptr<const QueryEngine> engine_;
};

}  // namespace asrel::serve
