// HTTP routing for the query engine: maps paths + query strings onto
// QueryEngine calls and renders the answers as JSON. Kept separate from
// HttpServer so tests can exercise the routes without sockets, and from
// QueryEngine so the engine stays transport-agnostic.
//
// Routes (GET unless noted):
//   /rel?a=ASN&b=ASN        point lookup: truth + verdicts + validation
//   /as?asn=ASN             per-AS summary card
//   /links?limit=N          deterministic sample of visible links
//   /report/regional        Fig. 1 coverage (cached)
//   /report/topological     Fig. 2 coverage (cached)
//   /report/table?algo=A    Tables 1-3 for algorithm A (cached)
//   /snapshot               snapshot provenance + section sizes
//   POST /reloadz           swap in a fresh snapshot (see EngineHub)
// (/healthz and /statsz are answered by HttpServer itself.)
//
// Every request pins the engine epoch once, up front: a hot reload that
// lands mid-request cannot change the answer halfway through.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/engine_hub.hpp"
#include "serve/http_server.hpp"
#include "serve/query_engine.hpp"

namespace asrel::serve {

class AsrelService {
 public:
  explicit AsrelService(std::shared_ptr<EngineHub> hub)
      : hub_(std::move(hub)) {}

  /// Static deployments: wraps the engine in a hub with no reload loader
  /// (POST /reloadz then fails cleanly with 503).
  explicit AsrelService(std::shared_ptr<const QueryEngine> engine)
      : hub_(std::make_shared<EngineHub>(std::move(engine))) {}

  /// The HttpServer handler.
  [[nodiscard]] HttpResponse handle(const HttpRequest& request) const;

  /// JSON object with engine + reload stats, for HttpServer's /statsz
  /// supplement hook.
  [[nodiscard]] std::string stats_json() const;

  /// Scrape-time metrics (per-shard cache counters, engine gauges) for
  /// HttpServer's /metricsz supplement hook. Reads the current epoch's
  /// cache, so numbers reset on reload — exactly what the cache does.
  void collect_metrics(std::vector<obs::MetricSnapshot>& out) const;

  /// The service's route set, for HttpServerOptions::metrics_routes (the
  /// per-route latency allowlist).
  [[nodiscard]] static std::vector<std::string> metric_routes();

  /// Optional supplier of a JSON object describing the live stream
  /// pipeline (recovery ladder outcome, watchdog verdicts, ingest queue);
  /// spliced into stats_json under "stream". Install once at startup,
  /// before requests are served; the supplier must be thread-safe.
  void set_stream_stats(std::function<std::string()> supplier) {
    stream_stats_ = std::move(supplier);
  }

  [[nodiscard]] EngineHub& hub() const { return *hub_; }

 private:
  std::shared_ptr<EngineHub> hub_;
  std::function<std::string()> stream_stats_;
};

}  // namespace asrel::serve
