// Hot-reloadable engine publication — the RCU of the serving layer.
//
// The daemon must swap in a freshly written snapshot (operator SIGHUP or
// POST /reloadz) without dropping a single in-flight request. The hub
// owns the current QueryEngine behind an atomic shared_ptr: readers pin
// one epoch with a single `current()` call and keep serving from that
// engine even while a reload publishes a successor; the old engine is
// destroyed when its last in-flight reader drops the reference. Each
// QueryEngine carries its own report LRU cache, so publication implicitly
// invalidates every cached report from the previous epoch.
//
// Reloads are serialized (one at a time) and fail closed: if the loader
// cannot produce a valid snapshot — missing file, torn write, checksum
// mismatch — the previous engine stays published and the error is
// recorded for /statsz.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "io/snapshot.hpp"
#include "serve/query_engine.hpp"

namespace asrel::serve {

class EngineHub {
 public:
  /// Produces the next snapshot on reload (typically io::load_snapshot_file
  /// on the daemon's --snapshot path). Returns nullopt + error to abort
  /// the reload and keep the current epoch live.
  using SnapshotLoader =
      std::function<std::optional<io::Snapshot>(std::string* error)>;

  /// Produces the next *engine* on reload — the flat (v3) path: the
  /// loader mmaps a FlatView and wraps it in a QueryEngine, so a reload
  /// costs microseconds instead of a full parse + index build. Wins over
  /// the snapshot loader when both are somehow set.
  using EngineLoader = std::function<std::shared_ptr<const QueryEngine>(
      std::string* error)>;

  /// A hub starts at epoch 1 with `initial`; a null loader makes reload()
  /// fail cleanly (static deployments keep working unchanged).
  explicit EngineHub(std::shared_ptr<const QueryEngine> initial,
                     SnapshotLoader loader = {});
  explicit EngineHub(std::shared_ptr<const QueryEngine> initial,
                     EngineLoader loader);

  /// The engine for this request. One call per request: the returned
  /// shared_ptr pins the epoch for the request's whole lifetime.
  [[nodiscard]] std::shared_ptr<const QueryEngine> current() const {
    return engine_.load(std::memory_order_acquire);
  }

  /// Epoch of the currently published engine (starts at 1, +1 per
  /// successful reload).
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  struct ReloadResult {
    bool ok = false;
    std::uint64_t epoch = 0;   ///< published epoch after the attempt
    std::string error;         ///< set when !ok
  };

  /// Loads, builds, and publishes a new engine. Serialized; concurrent
  /// callers queue up. On failure the previous engine stays published.
  ReloadResult reload();

  /// Publishes an in-memory snapshot directly (the streaming session's
  /// path: no file round-trip). Shares the reload mutex, so publishes and
  /// file reloads serialize against each other; readers pin epochs the
  /// same way. Always succeeds — the snapshot is already materialized.
  ReloadResult publish(io::Snapshot snapshot);

  // ---- async-signal-safe reload request (SIGHUP) ----
  /// Safe to call from a signal handler: just sets a flag.
  void request_reload() {
    reload_requested_.store(true, std::memory_order_release);
  }
  /// Consumes a pending request; the daemon's main loop polls this.
  [[nodiscard]] bool take_reload_request() {
    return reload_requested_.exchange(false, std::memory_order_acq_rel);
  }

  struct Stats {
    std::uint64_t epoch = 0;
    std::uint64_t reloads_ok = 0;
    std::uint64_t reloads_failed = 0;
    std::uint64_t publishes = 0;  ///< direct publish() swaps
    std::string last_error;  ///< most recent failed reload's diagnosis
  };
  [[nodiscard]] Stats stats() const;

 private:
  std::atomic<std::shared_ptr<const QueryEngine>> engine_;
  SnapshotLoader loader_;
  EngineLoader engine_loader_;
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<bool> reload_requested_{false};

  mutable std::mutex reload_mutex_;  ///< serializes reload(); guards counters
  std::uint64_t reloads_ok_ = 0;
  std::uint64_t reloads_failed_ = 0;
  std::uint64_t publishes_ = 0;
  std::string last_error_;
};

}  // namespace asrel::serve
