// The epoll front end: nonblocking event loops behind the shared
// admission queue.
//
// Each loop owns an epoll fd, a wake eventfd, a timer wheel, and the
// connections it has claimed. Connections are claimed from the same
// bounded pending_ queue the acceptor fills for the thread-pool model —
// admission control (queue-full shed, EMFILE recovery) is identical by
// construction. Handlers run inline on the loop thread; that is a
// deliberate equivalence decision, not a simplification: a loop busy in a
// handler cannot claim queued connections, so overload backs up into the
// bounded queue and sheds at admission exactly like a busy worker pool.
//
// The throughput story is batching. One readiness event pulls every
// available byte off the socket, the shared RequestAssembler slices the
// buffer into as many pipelined requests as arrived, each response is
// rendered into a shared output chunk, and one writev pushes the batch
// back out. A pipelined burst of N requests costs O(1) syscalls instead
// of the blocking path's O(N) recv + O(N) send — on loopback this is the
// difference between ~80k and ~1M requests per second on one core.
//
// Timeout semantics mirror the blocking path observably:
//  - total per-request deadline: checked lazily when data arrives (the
//    blocking path checks before each recv). Never timer-fired: firing a
//    408 between a trickler's sends would race the close against the
//    client's next write and an RST could discard the buffered 408.
//  - stall/idle timeout (request_timeout_ms): timer-wheel driven, the
//    analogue of SO_RCVTIMEO. Mid-request stall answers 408; an idle
//    keep-alive is closed silently; a write-stalled connection is cut.
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "serve/fault_inject.hpp"
#include "serve/http_server.hpp"
#include "serve/request_assembler.hpp"
#include "serve/response_writer.hpp"
#include "serve/timer_wheel.hpp"

namespace asrel::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Cap on bytes pulled off one socket per readiness event, so one
/// firehose connection cannot starve its loop-mates.
constexpr std::size_t kMaxReadPerEvent = 1 << 20;
/// Responses accumulate into the tail output chunk until it reaches this
/// size; then a new chunk starts. Bounds per-chunk realloc copying while
/// keeping the iovec count per writev small.
constexpr std::size_t kOutChunkTarget = 32 * 1024;
constexpr int kMaxIov = 16;
constexpr int kMaxEvents = 256;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct HttpServer::EpollLoop {
  struct Conn {
    explicit Conn(std::size_t max_request_bytes)
        : assembler(max_request_bytes) {}

    RequestAssembler assembler;
    /// Rendered-but-unsent response bytes; front chunk partially sent up
    /// to out_off. A deque so a torn writev only advances offsets.
    std::deque<std::string> out;
    std::size_t out_off = 0;
    /// When the current request cycle began — the total-deadline anchor.
    /// Reset after each dispatched request, like the blocking path resets
    /// its per-iteration clock after each response.
    Clock::time_point cycle_start;
    Clock::time_point last_activity;
    bool want_write = false;       ///< EPOLLOUT currently armed
    bool close_after_flush = false;
    bool peer_closed = false;      ///< recv saw EOF; serve what's buffered
    /// Cumulative EAGAIN write stalls on this connection; stamped into
    /// /slowz entries so a slow request can be told apart from a slow
    /// *reader* (backpressure shows up here, handler time in latency_us).
    std::uint32_t flush_stalls = 0;
  };

  int epoll_fd = -1;
  int wake_fd = -1;
  int index = 0;  ///< loop ordinal, for lifecycle log events
  TimerWheel wheel;
  std::unordered_map<int, Conn> conns;

  ~EpollLoop() {
    // Connections are closed (with bookkeeping) by the loop's exit path;
    // only the loop's own fds remain.
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
  }

  [[nodiscard]] std::size_t out_bytes(const Conn& conn) const {
    std::size_t total = 0;
    for (const auto& chunk : conn.out) total += chunk.size();
    return total - conn.out_off;
  }

  void set_interest(int fd, bool want_write) {
    epoll_event event{};
    event.events = EPOLLIN | EPOLLRDHUP |
                   (want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
    event.data.fd = fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &event);
  }

  /// Closes a connection with the same drained/aborted bookkeeping the
  /// thread-pool worker applies after serve_connection returns.
  void close_conn(HttpServer& server, int fd) {
    wheel.cancel(static_cast<std::uint64_t>(fd));
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    bool was_aborted = false;
    {
      std::lock_guard<std::mutex> lock{server.active_mutex_};
      server.active_fds_.erase(fd);
      was_aborted = server.aborted_fds_.erase(fd) > 0;
    }
    if (was_aborted) {
      server.aborted_->inc();
    } else if (server.draining_.load(std::memory_order_acquire)) {
      server.drained_->inc();
    }
    ::close(fd);
    conns.erase(fd);
  }

  /// Renders `response` into the connection's output queue; the bytes are
  /// identical to the blocking path's (same append_http_response).
  void queue_response(Conn& conn, const HttpResponse& response,
                      bool keep_alive) {
    if (conn.out.empty() || conn.out.back().size() >= kOutChunkTarget) {
      conn.out.emplace_back();
    }
    append_http_response(conn.out.back(), response, keep_alive);
  }

  /// Writes queued output with writev until done or EAGAIN. Returns false
  /// when the connection was closed (write error). On EAGAIN the flush
  /// resumes on EPOLLOUT, with a stall timer so a dead peer cannot pin
  /// the buffer forever.
  [[nodiscard]] bool flush(HttpServer& server, int fd, Conn& conn) {
    auto& faults = fault::FaultInjector::instance();
    while (!conn.out.empty()) {
      std::array<iovec, kMaxIov> iov;
      int count = 0;
      std::size_t offset = conn.out_off;
      for (const auto& chunk : conn.out) {
        if (count == kMaxIov) break;
        iov[static_cast<std::size_t>(count)].iov_base =
            const_cast<char*>(chunk.data()) + offset;
        iov[static_cast<std::size_t>(count)].iov_len = chunk.size() - offset;
        offset = 0;
        ++count;
      }
      const ssize_t n = faults.writev(fd, iov.data(), count);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          ++conn.flush_stalls;
          if (!conn.want_write) {
            conn.want_write = true;
            set_interest(fd, true);
          }
          wheel.arm(static_cast<std::uint64_t>(fd),
                    Clock::now() + std::chrono::milliseconds(
                                       server.options_.request_timeout_ms));
          return true;
        }
        close_conn(server, fd);
        return false;
      }
      server.bytes_written_->add(static_cast<std::uint64_t>(n));
      conn.last_activity = Clock::now();
      // Advance past what the kernel took, possibly mid-chunk.
      std::size_t taken = static_cast<std::size_t>(n);
      while (taken > 0) {
        std::string& front = conn.out.front();
        const std::size_t left = front.size() - conn.out_off;
        if (taken < left) {
          conn.out_off += taken;
          break;
        }
        taken -= left;
        conn.out.pop_front();
        conn.out_off = 0;
      }
    }
    if (conn.want_write) {
      conn.want_write = false;
      set_interest(fd, false);
    }
    return true;
  }

  /// Drains the assembler: dispatches every complete request, queues the
  /// responses, flushes once. Returns false when the connection is gone.
  [[nodiscard]] bool process(HttpServer& server, int fd, Conn& conn) {
    if (!conn.close_after_flush) {
      HttpRequest request;
      for (;;) {
        const AssemblerStatus status = conn.assembler.next(&request);
        if (status == AssemblerStatus::kNeedMore) break;
        if (status == AssemblerStatus::kMalformed) {
          server.malformed_->inc();
          server.responses_4xx_->inc();
          queue_response(
              conn,
              HttpResponse::json(400, R"({"error":"malformed request"})"),
              false);
          conn.close_after_flush = true;
          break;
        }
        if (status == AssemblerStatus::kTooLarge ||
            status == AssemblerStatus::kBodyTooLarge) {
          if (status == AssemblerStatus::kTooLarge) server.malformed_->inc();
          queue_response(
              conn,
              HttpResponse::json(413, R"({"error":"request too large"})"),
              false);
          conn.close_after_flush = true;
          break;
        }

        // ---- dispatch; identical accounting to the blocking path ----
        server.requests_->inc();
        const auto dispatch_started = Clock::now();
        const bool tracing = obs::Tracer::instance().enabled();
        const std::uint64_t trace_start_us =
            tracing
                ? obs::Tracer::instance().to_trace_us(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          dispatch_started.time_since_epoch())
                          .count())
                : 0;
        const HttpResponse response = server.dispatch(request);
        if (response.status >= 500) {
          server.responses_5xx_->inc();
        } else if (response.status >= 400) {
          server.responses_4xx_->inc();
        } else {
          server.responses_2xx_->inc();
        }
        const auto finished = Clock::now();
        if (finished >= conn.cycle_start + std::chrono::milliseconds(
                                               server.options_
                                                   .request_deadline_ms)) {
          server.note_deadline_exceeded(request.path, request.request_id);
        }
        const bool keep_alive =
            request.keep_alive &&
            !server.draining_.load(std::memory_order_acquire) &&
            !server.stopping_.load(std::memory_order_acquire);
        const std::size_t queued_before = out_bytes(conn);
        queue_response(conn, response, keep_alive);
        server.observe_request(
            request.path,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    finished - dispatch_started)
                    .count()),
            trace_start_us, tracing,
            RequestObservation{
                request.request_id,
                static_cast<std::uint64_t>(out_bytes(conn) - queued_before),
                conn.flush_stalls});
        conn.cycle_start = finished;  // next request's deadline anchor
        if (!keep_alive) {
          conn.close_after_flush = true;
          break;
        }
      }
    }
    if (!flush(server, fd, conn)) return false;
    if (conn.out.empty() && conn.close_after_flush) {
      close_conn(server, fd);
      return false;
    }
    return true;
  }

  void on_readable(HttpServer& server, int fd, Conn& conn) {
    // Lazy total-deadline check, in the same position the blocking path
    // checks it: before consuming newly arrived bytes, only while a
    // request is mid-flight.
    const auto now = Clock::now();
    if (conn.assembler.has_partial() &&
        now >= conn.cycle_start +
                   std::chrono::milliseconds(
                       server.options_.request_deadline_ms)) {
      server.timeouts_->inc();
      server.note_deadline_exceeded("(read)");
      queue_response(
          conn,
          HttpResponse::json(408, R"({"error":"request deadline exceeded"})"),
          false);
      conn.close_after_flush = true;
      if (flush(server, fd, conn) && conn.out.empty()) {
        close_conn(server, fd);
      }
      return;
    }

    auto& faults = fault::FaultInjector::instance();
    char buffer[64 * 1024];
    std::size_t total = 0;
    bool error_close = false;
    for (;;) {
      const ssize_t n = faults.recv(fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        server.bytes_read_->add(static_cast<std::uint64_t>(n));
        conn.assembler.feed(buffer, static_cast<std::size_t>(n));
        total += static_cast<std::size_t>(n);
        if (total >= kMaxReadPerEvent) break;
        continue;
      }
      if (n == 0) {
        conn.peer_closed = true;
        break;
      }
      if (errno == EINTR) continue;
      // An injected EAGAIN is indistinguishable from a real one; with
      // level-triggered epoll any bytes still in the kernel re-fire
      // EPOLLIN immediately, so a fake EAGAIN only delays, never hangs.
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      error_close = true;  // ECONNRESET and friends
      break;
    }
    if (total > 0) {
      conn.last_activity = Clock::now();
      wheel.arm(static_cast<std::uint64_t>(fd),
                conn.last_activity + std::chrono::milliseconds(
                                         server.options_.request_timeout_ms));
    }
    if (!process(server, fd, conn)) return;
    if (error_close) {
      close_conn(server, fd);
      return;
    }
    if (conn.peer_closed) {
      // Half-closed peer: everything it sent has been processed and the
      // responses queued. Close once the flush completes.
      if (conn.out.empty()) {
        close_conn(server, fd);
      } else {
        conn.close_after_flush = true;
      }
    }
  }

  void on_event(HttpServer& server, int fd, std::uint32_t events) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;  // closed earlier in this batch
    Conn& conn = it->second;
    if ((events & EPOLLOUT) != 0) {
      if (!flush(server, fd, conn)) return;
      if (conn.out.empty() && conn.close_after_flush) {
        close_conn(server, fd);
        return;
      }
    }
    if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
      // EPOLLHUP/EPOLLERR funnel into the read path: recv reports the
      // truth (EOF or the real errno) and the close accounting is shared.
      on_readable(server, fd, conn);
    }
  }

  void on_timer(HttpServer& server, int fd, Clock::time_point now) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    Conn& conn = it->second;
    const auto stall_deadline =
        conn.last_activity +
        std::chrono::milliseconds(server.options_.request_timeout_ms);
    if (now < stall_deadline) {
      // Activity since the timer was set; push it out (lazy re-arm).
      wheel.arm(static_cast<std::uint64_t>(fd), stall_deadline);
      return;
    }
    if (!conn.out.empty()) {
      // Write-stalled: the peer stopped reading. SO_SNDTIMEO analogue.
      close_conn(server, fd);
      return;
    }
    if (conn.assembler.has_partial()) {
      // Mid-request read stall: SO_RCVTIMEO analogue, same 408.
      server.timeouts_->inc();
      queue_response(conn,
                     HttpResponse::json(408, R"({"error":"request timeout"})"),
                     false);
      conn.close_after_flush = true;
      if (flush(server, fd, conn) && conn.out.empty()) {
        close_conn(server, fd);
      }
      return;
    }
    close_conn(server, fd);  // idle keep-alive, cut silently
  }

  /// Claims every queued connection. Runs between event batches, so a
  /// loop stuck in a handler claims nothing — the queue backs up and the
  /// acceptor sheds, preserving the thread-pool's admission behavior.
  void claim_pending(HttpServer& server) {
    for (;;) {
      PendingConn pending;
      {
        std::lock_guard<std::mutex> lock{server.queue_mutex_};
        if (server.pending_.empty()) return;
        pending = server.pending_.front();
        server.pending_.pop_front();
      }
      const int fd = pending.fd;
      {
        std::lock_guard<std::mutex> lock{server.active_mutex_};
        server.active_fds_.insert(fd);
      }
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const auto now = Clock::now();
      const auto it =
          conns.try_emplace(fd, server.options_.max_request_bytes).first;
      Conn& conn = it->second;
      conn.assembler.seed_request_ids(pending.sequence);
      conn.cycle_start = now;
      conn.last_activity = now;
      epoll_event event{};
      event.events = EPOLLIN | EPOLLRDHUP;
      event.data.fd = fd;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
        close_conn(server, fd);
        continue;
      }
      wheel.arm(static_cast<std::uint64_t>(fd),
                now + std::chrono::milliseconds(
                          server.options_.request_timeout_ms));
      // The socket may already hold a full pipelined burst; serve it now
      // rather than waiting for a (level-triggered, immediate) event.
      on_readable(server, fd, conn);
    }
  }
};

bool HttpServer::epoll_start(std::string* error) {
  const int loop_count = std::max(1, options_.worker_threads);
  for (int i = 0; i < loop_count; ++i) {
    auto loop = std::make_shared<EpollLoop>();
    loop->index = i;
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      if (error != nullptr) {
        *error = std::string{"epoll_create1()/eventfd(): "} +
                 std::strerror(errno);
      }
      return false;
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = loop->wake_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &event);
    loops_.push_back(std::move(loop));
  }
  workers_.reserve(loops_.size());
  for (const auto& loop : loops_) {
    workers_.emplace_back([this, loop] { epoll_loop(*loop); });
  }
  return true;
}

void HttpServer::wake_loops() {
  for (const auto& loop : loops_) {
    if (loop->wake_fd < 0) continue;
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(loop->wake_fd, &one, sizeof(one));
  }
}

void HttpServer::epoll_loop(EpollLoop& loop) {
  static obs::LogSite start_site{"serve.epoll", "loop_start", 0};
  static obs::LogSite exit_site{"serve.epoll", "loop_exit", 0};
  obs::log_event(start_site, obs::LogLevel::kInfo, 0,
                 {{"loop", static_cast<std::uint64_t>(loop.index)}});
  // Timer-wheel counters are flushed as deltas once per iteration: the
  // wheel is single-threaded, the registry counters are shared.
  TimerWheel::Stats flushed{};
  std::array<epoll_event, kMaxEvents> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    loop.claim_pending(*this);
    if (stopping_.load(std::memory_order_acquire)) break;
    const auto timeout = loop.wheel.poll_timeout(
        Clock::now(), std::chrono::milliseconds{100});
    const int ready =
        ::epoll_wait(loop.epoll_fd, events.data(), kMaxEvents,
                     static_cast<int>(timeout.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // loop fd gone; stop() owns cleanup
    }
    // Iteration latency covers the busy segment — event dispatch plus
    // timer expiry — not the epoll_wait sleep; the histogram answers "how
    // long can this loop go unresponsive once woken".
    const auto iteration_started = Clock::now();
    epoll_ready_fds_->observe(static_cast<double>(ready));
    for (int i = 0; i < ready; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == loop.wake_fd) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t n =
            ::read(loop.wake_fd, &drained, sizeof(drained));
        continue;
      }
      loop.on_event(*this, fd, events[static_cast<std::size_t>(i)].events);
    }
    const auto now = Clock::now();
    loop.wheel.expire(
        now, [&](std::uint64_t id) {
          loop.on_timer(*this, static_cast<int>(id), now);
        });
    const TimerWheel::Stats& wheel_stats = loop.wheel.stats();
    timer_arms_->add(wheel_stats.arms - flushed.arms);
    timer_lazy_cancels_->add(wheel_stats.lazy_cancels -
                             flushed.lazy_cancels);
    timer_fires_->add(wheel_stats.fires - flushed.fires);
    timer_cascades_->add(wheel_stats.cascades - flushed.cascades);
    timer_late_fires_->add(wheel_stats.late_fires - flushed.late_fires);
    flushed = wheel_stats;
    epoll_iteration_us_->observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - iteration_started)
            .count()));
  }
  // Exit: every remaining connection gets the same bookkeeping close the
  // worker pool applies (stop()/drain() have already marked them aborted).
  std::uint64_t closed_at_exit = 0;
  while (!loop.conns.empty()) {
    loop.close_conn(*this, loop.conns.begin()->first);
    ++closed_at_exit;
  }
  obs::log_event(exit_site, obs::LogLevel::kInfo, 0,
                 {{"loop", static_cast<std::uint64_t>(loop.index)},
                  {"conns_closed", closed_at_exit}});
}

}  // namespace asrel::serve
