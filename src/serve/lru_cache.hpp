// Sharded LRU cache for aggregate query results.
//
// Keys hash to one of N shards; each shard holds its own mutex, an
// intrusive recency list, and a capacity bound, so concurrent readers on
// different keys rarely contend. Values are shared_ptr<const V>: a hit
// hands out a reference without copying, and eviction never invalidates a
// value a request thread is still serializing.
//
// Accounting is per shard — hits, misses, and evictions are plain counters
// guarded by the shard mutex the operation already holds, so telemetry adds
// no atomics to the hot path and /metricsz can report shard balance.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace asrel::serve {

struct ShardStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::vector<ShardStats> shards;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(std::size_t shard_count = 8,
                           std::size_t capacity_per_shard = 32)
      : shards_(shard_count == 0 ? 1 : shard_count),
        capacity_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {}

  /// Returns the cached value for `key`, computing and inserting it with
  /// `compute` on a miss. `compute` runs outside the shard lock, so two
  /// racing misses may both compute; the first insert wins and both
  /// callers observe a usable value. Accounting is settled at insert time:
  /// the race loser is served the winner's cached value, so it counts as a
  /// hit — only the caller whose value actually enters the cache records a
  /// miss.
  template <typename Compute>
  std::shared_ptr<const V> get_or_compute(const K& key, Compute&& compute) {
    Shard& shard = shard_of(key);
    {
      std::lock_guard<std::mutex> lock{shard.mutex};
      if (auto hit = lookup_locked(shard, key)) {
        ++shard.hits;
        return hit;
      }
    }
    std::shared_ptr<const V> value = compute();
    std::lock_guard<std::mutex> lock{shard.mutex};
    if (auto raced = lookup_locked(shard, key)) {
      ++shard.hits;
      return raced;
    }
    ++shard.misses;
    shard.order.push_front(Entry{key, value});
    shard.index[key] = shard.order.begin();
    if (shard.order.size() > capacity_) {
      shard.index.erase(shard.order.back().key);
      shard.order.pop_back();
      ++shard.evictions;
    }
    return value;
  }

  [[nodiscard]] std::shared_ptr<const V> get(const K& key) {
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock{shard.mutex};
    if (auto hit = lookup_locked(shard, key)) {
      ++shard.hits;
      return hit;
    }
    ++shard.misses;
    return nullptr;
  }

  [[nodiscard]] CacheStats stats() const {
    CacheStats stats;
    stats.shards.reserve(shards_.size());
    for (const auto& shard : shards_) {
      ShardStats s;
      std::lock_guard<std::mutex> lock{shard.mutex};
      s.hits = shard.hits;
      s.misses = shard.misses;
      s.evictions = shard.evictions;
      s.entries = shard.order.size();
      stats.hits += s.hits;
      stats.misses += s.misses;
      stats.evictions += s.evictions;
      stats.entries += s.entries;
      stats.shards.push_back(s);
    }
    return stats;
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    K key;
    std::shared_ptr<const V> value;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> order;  ///< front = most recently used
    std::unordered_map<K, typename std::list<Entry>::iterator, Hash> index;
    std::uint64_t hits = 0;       ///< guarded by mutex
    std::uint64_t misses = 0;     ///< guarded by mutex
    std::uint64_t evictions = 0;  ///< guarded by mutex
  };

  Shard& shard_of(const K& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::shared_ptr<const V> lookup_locked(Shard& shard, const K& key) {
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) return nullptr;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    it->second = shard.order.begin();
    return shard.order.front().value;
  }

  std::vector<Shard> shards_;
  std::size_t capacity_;
};

}  // namespace asrel::serve
