// Read-only query engine over one loaded snapshot.
//
// Construction builds hash indexes (ASN -> record, link -> ground
// truth / verdicts / validation / class tags) and per-AS neighbor
// summaries; afterwards every structure is immutable, so any number of
// server threads may query concurrently without locks. Aggregate reports
// (Fig. 1/2 coverage, Tables 1-3) are serialized to JSON once and kept in
// a sharded LRU cache.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "eval/coverage.hpp"
#include "eval/report.hpp"
#include "io/snapshot.hpp"
#include "serve/lru_cache.hpp"

namespace asrel::serve {

/// Everything known about one AS pair, across every layer the paper
/// compares: ground truth, the three inferences, and the validation data.
struct RelAnswer {
  val::AsLink link;

  bool in_graph = false;  ///< ground-truth edge exists
  topo::RelType truth_rel = topo::RelType::kP2P;
  asn::Asn truth_provider;  ///< set when truth_rel == kP2C
  topo::ExportScope scope = topo::ExportScope::kFull;
  bool scope_via_community = false;
  bool misdocumented = false;
  std::optional<topo::RelType> hybrid_rel;

  bool observed = false;  ///< visible in collector paths
  std::string_view regional_class;      ///< set when observed
  std::string_view topological_class;   ///< set when observed

  struct Verdict {
    std::string_view algorithm;
    topo::RelType rel = topo::RelType::kP2P;
    asn::Asn provider;
  };
  std::vector<Verdict> verdicts;  ///< one per algorithm that labeled it

  bool validated = false;
  topo::RelType validated_rel = topo::RelType::kP2P;
  asn::Asn validated_provider;

  /// True when any layer knows this pair.
  [[nodiscard]] bool known() const {
    return in_graph || observed || validated || !verdicts.empty();
  }
};

/// Per-AS card: attributes, degrees, and neighbor/cone summaries.
struct AsSummary {
  asn::Asn asn;
  rir::Region region = rir::Region::kUnknown;
  std::string_view country;
  topo::Tier tier = topo::Tier::kStub;
  topo::StubKind stub_kind = topo::StubKind::kNotStub;
  bool hypergiant = false;
  std::uint32_t transit_degree = 0;
  std::uint32_t node_degree = 0;
  std::uint32_t cone_size = 0;
  std::uint32_t providers = 0;
  std::uint32_t customers = 0;
  std::uint32_t peers = 0;
  std::uint32_t siblings = 0;
  std::uint32_t observed_links = 0;   ///< visible links incident to this AS
  std::uint32_t validated_links = 0;  ///< validation entries incident
};

struct QueryEngineOptions {
  std::size_t cache_shards = 8;
  std::size_t cache_capacity_per_shard = 16;
  std::size_t table_min_links = 500;  ///< Tables 1-3 row threshold
};

class QueryEngine {
 public:
  explicit QueryEngine(io::Snapshot snapshot, QueryEngineOptions options = {});

  // ---- point lookups (lock-free, O(1) hash probes) ----
  [[nodiscard]] RelAnswer rel(asn::Asn a, asn::Asn b) const;
  [[nodiscard]] std::optional<AsSummary> as_summary(asn::Asn asn) const;

  /// A deterministic sample of visible links (for load generation).
  [[nodiscard]] std::vector<val::AsLink> sample_links(
      std::size_t limit) const;

  // ---- aggregate reports (computed once, then LRU-cached as JSON) ----
  /// Valid keys: "regional", "topological", "table:<algorithm>".
  /// Returns nullptr for an unknown key or unknown algorithm.
  [[nodiscard]] std::shared_ptr<const std::string> report_json(
      const std::string& key) const;

  // ---- uncached structured aggregates (for tests / offline use) ----
  [[nodiscard]] eval::CoverageReport regional_coverage() const;
  [[nodiscard]] eval::CoverageReport topological_coverage() const;
  [[nodiscard]] std::optional<eval::ValidationTable> validation_table(
      std::string_view algorithm) const;

  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] const io::Snapshot& snapshot() const { return snap_; }
  [[nodiscard]] std::vector<std::string_view> algorithm_names() const;

 private:
  struct AsExtra {
    std::uint32_t providers = 0, customers = 0, peers = 0, siblings = 0;
    std::uint32_t observed_links = 0, validated_links = 0;
  };

  [[nodiscard]] eval::CoverageReport coverage(bool regional) const;
  [[nodiscard]] std::shared_ptr<const std::string> build_report(
      const std::string& key) const;

  io::Snapshot snap_;
  QueryEngineOptions options_;
  std::unordered_map<asn::Asn, std::uint32_t> as_index_;
  std::unordered_map<val::AsLink, std::uint32_t> edge_index_;
  std::unordered_map<val::AsLink, std::uint32_t> link_index_;
  std::unordered_map<val::AsLink, std::uint32_t> validation_index_;
  /// Per algorithm: link -> label index in that algorithm's table.
  std::vector<std::unordered_map<val::AsLink, std::uint32_t>> verdict_index_;
  std::vector<AsExtra> as_extra_;  ///< parallel to snap_.ases
  mutable ShardedLruCache<std::string, std::string> cache_;
};

}  // namespace asrel::serve
