// Read-only query engine over one loaded snapshot.
//
// Construction builds hash indexes (ASN -> record, link -> ground
// truth / verdicts / validation / class tags) and per-AS neighbor
// summaries; afterwards every structure is immutable, so any number of
// server threads may query concurrently without locks. Aggregate reports
// (Fig. 1/2 coverage, Tables 1-3) are serialized to JSON once and kept in
// a sharded LRU cache.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "eval/coverage.hpp"
#include "eval/report.hpp"
#include "io/flat_snapshot.hpp"
#include "io/snapshot.hpp"
#include "serve/lru_cache.hpp"

namespace asrel::serve {

/// Everything known about one AS pair, across every layer the paper
/// compares: ground truth, the three inferences, and the validation data.
struct RelAnswer {
  val::AsLink link;

  bool in_graph = false;  ///< ground-truth edge exists
  topo::RelType truth_rel = topo::RelType::kP2P;
  asn::Asn truth_provider;  ///< set when truth_rel == kP2C
  topo::ExportScope scope = topo::ExportScope::kFull;
  bool scope_via_community = false;
  bool misdocumented = false;
  std::optional<topo::RelType> hybrid_rel;

  bool observed = false;  ///< visible in collector paths
  std::string_view regional_class;      ///< set when observed
  std::string_view topological_class;   ///< set when observed

  struct Verdict {
    std::string_view algorithm;
    topo::RelType rel = topo::RelType::kP2P;
    asn::Asn provider;
  };
  std::vector<Verdict> verdicts;  ///< one per algorithm that labeled it

  bool validated = false;
  topo::RelType validated_rel = topo::RelType::kP2P;
  asn::Asn validated_provider;

  /// True when any layer knows this pair.
  [[nodiscard]] bool known() const {
    return in_graph || observed || validated || !verdicts.empty();
  }
};

/// Per-AS card: attributes, degrees, and neighbor/cone summaries.
struct AsSummary {
  asn::Asn asn;
  rir::Region region = rir::Region::kUnknown;
  std::string_view country;
  topo::Tier tier = topo::Tier::kStub;
  topo::StubKind stub_kind = topo::StubKind::kNotStub;
  bool hypergiant = false;
  std::uint32_t transit_degree = 0;
  std::uint32_t node_degree = 0;
  std::uint32_t cone_size = 0;
  std::uint32_t providers = 0;
  std::uint32_t customers = 0;
  std::uint32_t peers = 0;
  std::uint32_t siblings = 0;
  std::uint32_t observed_links = 0;   ///< visible links incident to this AS
  std::uint32_t validated_links = 0;  ///< validation entries incident
};

struct QueryEngineOptions {
  std::size_t cache_shards = 8;
  std::size_t cache_capacity_per_shard = 16;
  std::size_t table_min_links = 500;  ///< Tables 1-3 row threshold
  /// Rendered /rel bodies, keyed by canonical pair. Sized for the hot
  /// set of point lookups (default 8 x 4096 entries, a few MiB of JSON).
  std::size_t rel_cache_shards = 8;
  std::size_t rel_cache_capacity_per_shard = 4096;
};

class QueryEngine {
 public:
  explicit QueryEngine(io::Snapshot snapshot, QueryEngineOptions options = {});

  /// Flat (v3) mode: point lookups read straight from the mapped image —
  /// no vectors, no index build, so construction is O(1) and a reload is
  /// just mmap + validate. The first aggregate-report call lazily
  /// inflates a v2 Snapshot (and its indexes) from the view; point
  /// lookups never touch the inflated copy.
  explicit QueryEngine(std::shared_ptr<const io::FlatView> flat,
                       QueryEngineOptions options = {});

  // ---- point lookups (lock-free, O(1) hash probes) ----
  [[nodiscard]] RelAnswer rel(asn::Asn a, asn::Asn b) const;
  [[nodiscard]] std::optional<AsSummary> as_summary(asn::Asn asn) const;

  /// Renders (and caches) the /rel response body for one AS pair. The
  /// engine is immutable for its epoch, so a rendered body is cacheable
  /// exactly like an aggregate report — an epoch swap replaces the engine
  /// and with it the cache. AsLink canonicalizes the pair, so (a,b) and
  /// (b,a) share one entry.
  [[nodiscard]] std::shared_ptr<const std::string> rel_json(
      asn::Asn a, asn::Asn b) const;

  /// A deterministic sample of visible links (for load generation).
  [[nodiscard]] std::vector<val::AsLink> sample_links(
      std::size_t limit) const;

  // ---- aggregate reports (computed once, then LRU-cached as JSON) ----
  /// Valid keys: "regional", "topological", "table:<algorithm>".
  /// Returns nullptr for an unknown key or unknown algorithm.
  [[nodiscard]] std::shared_ptr<const std::string> report_json(
      const std::string& key) const;

  // ---- uncached structured aggregates (for tests / offline use) ----
  [[nodiscard]] eval::CoverageReport regional_coverage() const;
  [[nodiscard]] eval::CoverageReport topological_coverage() const;
  [[nodiscard]] std::optional<eval::ValidationTable> validation_table(
      std::string_view algorithm) const;

  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] CacheStats rel_cache_stats() const {
    return rel_cache_.stats();
  }

  /// The in-memory snapshot. Flat mode inflates it on first call — use
  /// the light accessors below on hot or scrape paths instead.
  [[nodiscard]] const io::Snapshot& snapshot() const;

  // ---- light accessors (never trigger inflation) ----
  [[nodiscard]] const io::SnapshotMeta& meta() const { return meta_; }
  [[nodiscard]] std::size_t num_ases() const;
  [[nodiscard]] std::size_t num_edges() const;
  [[nodiscard]] std::size_t num_links() const;
  [[nodiscard]] std::size_t num_validation() const;
  [[nodiscard]] std::vector<std::string_view> algorithm_names() const;
  [[nodiscard]] bool flat_mode() const { return flat_ != nullptr; }

 private:
  struct AsExtra {
    std::uint32_t providers = 0, customers = 0, peers = 0, siblings = 0;
    std::uint32_t observed_links = 0, validated_links = 0;
  };

  void build_indexes() const;  ///< writes only the mutable index members
  /// Flat mode: materializes snap_ + indexes exactly once (thread-safe);
  /// aggregate code then runs unchanged against the inflated copy.
  void ensure_inflated() const;
  [[nodiscard]] eval::CoverageReport coverage(bool regional) const;
  [[nodiscard]] std::shared_ptr<const std::string> build_report(
      const std::string& key) const;

  std::shared_ptr<const io::FlatView> flat_;  ///< null in snapshot mode
  io::SnapshotMeta meta_;
  mutable std::once_flag inflate_once_;
  // Mutable because flat mode fills them lazily under inflate_once_;
  // snapshot mode builds them in the constructor and never writes again.
  mutable io::Snapshot snap_;
  QueryEngineOptions options_;
  mutable std::unordered_map<asn::Asn, std::uint32_t> as_index_;
  mutable std::unordered_map<val::AsLink, std::uint32_t> edge_index_;
  mutable std::unordered_map<val::AsLink, std::uint32_t> link_index_;
  mutable std::unordered_map<val::AsLink, std::uint32_t> validation_index_;
  /// Per algorithm: link -> label index in that algorithm's table.
  mutable std::vector<std::unordered_map<val::AsLink, std::uint32_t>>
      verdict_index_;
  mutable std::vector<AsExtra> as_extra_;  ///< parallel to snap_.ases
  mutable ShardedLruCache<std::string, std::string> cache_;
  /// Rendered /rel bodies keyed by (min<<32)|max of the pair.
  mutable ShardedLruCache<std::uint64_t, std::string> rel_cache_;
};

}  // namespace asrel::serve
