#include "serve/response_writer.hpp"

#include <array>
#include <cstdio>

namespace asrel::serve {

namespace {

/// Preassembled "HTTP/1.1 NNN Text\r\nContent-Type: " fragments for the
/// statuses the server actually emits; other statuses fall back to
/// snprintf. Indexed lookup keeps the hot 200 path to two memcpys.
struct StatusFragment {
  int status;
  const char* prefix;  ///< status line + "Content-Type: "
};

constexpr std::array<StatusFragment, 8> kStatusFragments{{
    {200, "HTTP/1.1 200 OK\r\nContent-Type: "},
    {400, "HTTP/1.1 400 Bad Request\r\nContent-Type: "},
    {404, "HTTP/1.1 404 Not Found\r\nContent-Type: "},
    {405, "HTTP/1.1 405 Method Not Allowed\r\nContent-Type: "},
    {408, "HTTP/1.1 408 Request Timeout\r\nContent-Type: "},
    {413, "HTTP/1.1 413 Payload Too Large\r\nContent-Type: "},
    {500, "HTTP/1.1 500 Internal Server Error\r\nContent-Type: "},
    {503, "HTTP/1.1 503 Service Unavailable\r\nContent-Type: "},
}};

constexpr const char kContentLength[] = "\r\nContent-Length: ";
constexpr const char kConnKeepAlive[] = "\r\nConnection: keep-alive";
constexpr const char kConnClose[] = "\r\nConnection: close";

}  // namespace

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void append_http_response(std::string& out, const HttpResponse& response,
                          bool keep_alive) {
  out.reserve(out.size() + 160 + response.body.size());
  const StatusFragment* fragment = nullptr;
  for (const auto& candidate : kStatusFragments) {
    if (candidate.status == response.status) {
      fragment = &candidate;
      break;
    }
  }
  if (fragment != nullptr) {
    out += fragment->prefix;
  } else {
    char line[64];
    std::snprintf(line, sizeof(line), "HTTP/1.1 %d %s\r\nContent-Type: ",
                  response.status, status_text(response.status));
    out += line;
  }
  out += response.content_type;
  out += kContentLength;
  char digits[24];
  const int n = std::snprintf(digits, sizeof(digits), "%zu",
                              response.body.size());
  out.append(digits, static_cast<std::size_t>(n));
  out += keep_alive ? kConnKeepAlive : kConnClose;
  for (const auto& [name, value] : response.headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += "\r\n\r\n";
  out += response.body;
}

std::string render_http_response(const HttpResponse& response,
                                 bool keep_alive) {
  std::string out;
  append_http_response(out, response, keep_alive);
  return out;
}

HttpResponse make_shed_response(int retry_after_s) {
  HttpResponse response =
      HttpResponse::json(503, R"({"error":"server overloaded"})");
  response.headers.emplace_back("Retry-After",
                                std::to_string(retry_after_s));
  return response;
}

}  // namespace asrel::serve
