// Raw byte mutations shared by the property tests and the standalone fuzz
// driver.
//
// The strategies are the structure-agnostic half of structure-aware
// fuzzing: bit flips, interesting-integer overwrites (the values that break
// length/count fields: 0, 1, 0x7F.., 0xFF..), chunk erase/duplicate/insert,
// truncation, and self-splice. Targets layer their own format knowledge on
// top by seeding the corpus with valid inputs.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "testing/prng.hpp"

namespace asrel::testing {

struct MutateOptions {
  std::size_t max_len = 1 << 16;
  /// Mutations applied per call (a small stack, like libFuzzer's default).
  int max_stacked = 4;
};

/// Returns a mutated copy of `input`. Never returns a byte-identical copy
/// unless `input` is empty and growth is impossible under `options`.
[[nodiscard]] std::string mutate_bytes(std::string_view input, Rng& rng,
                                       const MutateOptions& options = {});

/// Stock shrinker for byte strings (for check_property counterexamples):
/// drop halves, then chunks, then zero single bytes — classic
/// delta-debugging candidates.
[[nodiscard]] std::vector<std::string> shrink_bytes(const std::string& input);

}  // namespace asrel::testing
