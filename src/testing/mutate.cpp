#include "testing/mutate.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace asrel::testing {

namespace {

constexpr std::uint64_t kInteresting[] = {
    0,    1,       0x7F,       0x80,       0xFF,       0x7FFF,
    0xFFFF, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0x100000000ull,
    0x7FFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull};

void write_le(std::string& out, std::size_t pos, std::uint64_t value,
              std::size_t width) {
  for (std::size_t i = 0; i < width && pos + i < out.size(); ++i) {
    out[pos + i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

/// One mutation round; returns false when the strategy was a no-op (e.g.
/// erase on an empty buffer) so the caller can retry another strategy.
bool mutate_once(std::string& bytes, Rng& rng, const MutateOptions& options) {
  switch (rng.below(8)) {
    case 0: {  // flip one bit
      if (bytes.empty()) return false;
      const std::size_t pos = rng.below(bytes.size());
      bytes[pos] = static_cast<char>(bytes[pos] ^ (1u << rng.below(8)));
      return true;
    }
    case 1: {  // overwrite one byte with a random value
      if (bytes.empty()) return false;
      bytes[rng.below(bytes.size())] = static_cast<char>(rng.below(256));
      return true;
    }
    case 2: {  // overwrite an aligned-width integer with an interesting value
      if (bytes.empty()) return false;
      const std::size_t width = std::size_t{1} << rng.below(4);  // 1/2/4/8
      if (bytes.size() < width) return false;
      const std::size_t pos = rng.below(bytes.size() - width + 1);
      write_le(bytes, pos,
               kInteresting[rng.below(std::size(kInteresting))], width);
      return true;
    }
    case 3: {  // truncate
      if (bytes.empty()) return false;
      bytes.resize(rng.below(bytes.size()));
      return true;
    }
    case 4: {  // erase a chunk
      if (bytes.size() < 2) return false;
      const std::size_t pos = rng.below(bytes.size());
      const std::size_t len = 1 + rng.below(
          std::min<std::size_t>(bytes.size() - pos, 64));
      bytes.erase(pos, len);
      return true;
    }
    case 5: {  // duplicate a chunk in place
      if (bytes.empty() || bytes.size() >= options.max_len) return false;
      const std::size_t pos = rng.below(bytes.size());
      const std::size_t len = 1 + rng.below(
          std::min<std::size_t>(bytes.size() - pos, 32));
      bytes.insert(pos, bytes.substr(pos, len));
      return true;
    }
    case 6: {  // insert random bytes
      if (bytes.size() >= options.max_len) return false;
      const std::size_t pos = bytes.empty() ? 0 : rng.below(bytes.size() + 1);
      std::string garbage;
      const std::size_t len = 1 + rng.below(16);
      for (std::size_t i = 0; i < len; ++i) {
        garbage.push_back(static_cast<char>(rng.below(256)));
      }
      bytes.insert(pos, garbage);
      return true;
    }
    default: {  // splice: overwrite a window with bytes from elsewhere
      if (bytes.size() < 4) return false;
      const std::size_t len = 1 + rng.below(bytes.size() / 2);
      const std::size_t from = rng.below(bytes.size() - len + 1);
      const std::size_t to = rng.below(bytes.size() - len + 1);
      std::memmove(bytes.data() + to, bytes.data() + from, len);
      return true;
    }
  }
}

}  // namespace

std::string mutate_bytes(std::string_view input, Rng& rng,
                         const MutateOptions& options) {
  std::string bytes{input};
  const int rounds = 1 + static_cast<int>(rng.below(
      static_cast<std::uint64_t>(options.max_stacked)));
  int applied = 0;
  for (int attempts = 0; applied < rounds && attempts < rounds * 8;
       ++attempts) {
    if (mutate_once(bytes, rng, options)) ++applied;
  }
  if (bytes.size() > options.max_len) bytes.resize(options.max_len);
  // Guarantee progress: a stubbornly unchanged buffer gets a fresh byte.
  if (bytes == input && bytes.size() < options.max_len) {
    bytes.push_back(static_cast<char>(rng.below(256)));
  }
  return bytes;
}

std::vector<std::string> shrink_bytes(const std::string& input) {
  std::vector<std::string> candidates;
  const std::size_t n = input.size();
  if (n == 0) return candidates;

  // Halves first (fast size reduction), then smaller chunks, then single
  // bytes for short inputs, then structure-preserving zeroing.
  candidates.push_back(input.substr(0, n / 2));
  candidates.push_back(input.substr(n / 2));
  for (std::size_t chunk = n / 4; chunk >= 1; chunk /= 2) {
    for (std::size_t pos = 0; pos + chunk <= n; pos += chunk) {
      std::string shorter = input;
      shorter.erase(pos, chunk);
      candidates.push_back(std::move(shorter));
      if (candidates.size() > 64) return candidates;
    }
    if (chunk == 1) break;
  }
  if (n <= 64) {
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (input[pos] == '\0') continue;
      std::string zeroed = input;
      zeroed[pos] = '\0';
      candidates.push_back(std::move(zeroed));
    }
  }
  return candidates;
}

}  // namespace asrel::testing
