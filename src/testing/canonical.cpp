#include "testing/canonical.hpp"

#include "core/snapshot_builder.hpp"
#include "serve/query_engine.hpp"

namespace asrel::testing {

core::ScenarioParams canonical_scenario_params() {
  core::ScenarioParams params;
  params.topology.as_count = 2500;
  params.topology.seed = 42;
  params.vantage.target_count = 120;
  return params;
}

std::vector<GoldenReport> build_golden_reports(
    const core::Scenario& scenario) {
  const serve::QueryEngine engine{core::build_snapshot(scenario)};

  const auto report = [&](const char* filename, const std::string& key) {
    const auto json = engine.report_json(key);
    return GoldenReport{filename, json ? *json : std::string{}};
  };
  return {
      report("fig1_regional.json", "regional"),
      report("fig2_topological.json", "topological"),
      report("table1_asrank.json", "table:asrank"),
      report("table2_problink.json", "table:problink"),
      report("table3_toposcope.json", "table:toposcope"),
  };
}

}  // namespace asrel::testing
