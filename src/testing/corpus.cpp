#include "testing/corpus.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "testing/mutate.hpp"
#include "testing/prng.hpp"

namespace asrel::testing {

namespace {

namespace fs = std::filesystem;

std::vector<std::pair<std::string, std::string>> load_corpus(
    const std::vector<std::string>& dirs) {
  std::vector<std::pair<std::string, std::string>> entries;  // name, bytes
  for (const auto& dir : dirs) {
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
      std::fprintf(stderr, "[fuzz] warning: corpus dir %s is not readable\n",
                   dir.c_str());
      continue;
    }
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in{entry.path(), std::ios::binary};
      std::ostringstream bytes;
      bytes << in.rdbuf();
      entries.emplace_back(entry.path().filename().string(), bytes.str());
    }
  }
  // Directory iteration order is filesystem-dependent; sort for
  // reproducible mutation schedules.
  std::sort(entries.begin(), entries.end());
  return entries;
}

}  // namespace

bool parse_fuzz_driver_args(int argc, char** argv,
                            FuzzDriverOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--seed") {
      options->seed = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--iterations") {
      options->iterations = std::strtol(next_value(), nullptr, 10);
    } else if (arg == "--max-len") {
      options->max_len = static_cast<std::size_t>(
          std::strtoull(next_value(), nullptr, 10));
    } else if (arg == "--emit-seeds") {
      options->emit_seeds_dir = next_value();
    } else if (arg.starts_with("--")) {
      std::fprintf(stderr,
                   "usage: %s [corpus_dir ...] [--iterations N] [--seed N] "
                   "[--max-len N] [--emit-seeds DIR]\n",
                   argv[0]);
      return false;
    } else {
      options->corpus_dirs.emplace_back(arg);
    }
  }
  return true;
}

int run_fuzz_driver(const FuzzDriverOptions& options, FuzzTarget target,
                    const std::vector<std::string>& synthesized_seeds) {
  if (!options.emit_seeds_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options.emit_seeds_dir, ec);
    int index = 0;
    for (const auto& seed : synthesized_seeds) {
      const fs::path path = fs::path{options.emit_seeds_dir} /
                            ("seed-" + std::to_string(index++) + ".bin");
      std::ofstream out{path, std::ios::binary};
      out.write(seed.data(), static_cast<std::streamsize>(seed.size()));
      if (!out) {
        std::fprintf(stderr, "[fuzz] cannot write %s\n", path.c_str());
        return 1;
      }
      std::printf("[fuzz] wrote %s (%zu bytes)\n", path.c_str(), seed.size());
    }
    return 0;
  }

  auto corpus = load_corpus(options.corpus_dirs);
  const std::size_t file_count = corpus.size();
  for (const auto& seed : synthesized_seeds) {
    corpus.emplace_back("<synthesized>", seed);
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "[fuzz] no corpus entries and no synthesized seeds\n");
    return 1;
  }

  // Phase 1: replay every entry verbatim (regression check — a crash on a
  // checked-in file means a previously-fixed bug came back).
  for (const auto& [name, bytes] : corpus) {
    target(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  }

  // Phase 2: seeded mutation loop.
  Rng rng{options.seed};
  MutateOptions mutate_options;
  mutate_options.max_len = options.max_len;
  const auto start = std::chrono::steady_clock::now();
  for (long i = 0; i < options.iterations; ++i) {
    const auto& base = corpus[rng.below(corpus.size())].second;
    const std::string mutated = mutate_bytes(base, rng, mutate_options);
    target(reinterpret_cast<const std::uint8_t*>(mutated.data()),
           mutated.size());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf(
      "[fuzz] ok: %zu corpus files + %zu synthesized seeds replayed, "
      "%ld mutation iterations in %.2fs (%.0f exec/s), seed %llu\n",
      file_count, synthesized_seeds.size(), options.iterations, seconds,
      seconds > 0 ? static_cast<double>(options.iterations) / seconds : 0.0,
      static_cast<unsigned long long>(options.seed));
  return 0;
}

int fuzz_driver_main(int argc, char** argv, FuzzTarget target,
                     const std::vector<std::string>& synthesized_seeds) {
  FuzzDriverOptions options;
  if (!parse_fuzz_driver_args(argc, argv, &options)) return 2;
  return run_fuzz_driver(options, target, synthesized_seeds);
}

}  // namespace asrel::testing
