// Deterministic PRNG for the testing subsystem.
//
// Everything in src/testing derives its randomness from this SplitMix64
// generator so that every property case, byte mutation, and fuzz iteration
// is reproducible from a single printed seed. std::mt19937 and
// std::uniform_int_distribution are deliberately avoided: their outputs are
// implementation-defined across standard libraries, and a counterexample
// that only reproduces on one libstdc++ version is useless.
#pragma once

#include <cstdint>
#include <vector>

namespace asrel::testing {

class Rng {
 public:
  constexpr explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// SplitMix64: passes BigCrush, two multiplies and three xor-shifts.
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound 0 returns 0. Uses rejection-free modulo
  /// (the bias is < 2^-40 for any bound a test would use).
  constexpr std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  constexpr bool chance(double p) { return unit() < p; }

  template <typename T>
  const T& pick(const std::vector<T>& from) {
    return from[below(from.size())];
  }

  /// Fisher-Yates; deterministic given the current state.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[below(i)]);
    }
  }

  /// A derived generator whose stream is independent of this one's future
  /// output — used to give each property case its own seed.
  constexpr Rng split() { return Rng{next() ^ 0xA5A5A5A55A5A5A5Aull}; }

 private:
  std::uint64_t state_;
};

}  // namespace asrel::testing
