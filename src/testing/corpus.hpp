// Standalone fuzzing driver: runs an LLVMFuzzerTestOneInput-style target
// over a checked-in corpus plus a deterministic mutation loop.
//
// libFuzzer needs clang; our tier-1 CI is GCC. This driver gives every
// fuzz target a second life as a plain binary: replay each corpus file,
// then run N iterations of seeded mutations over randomly chosen corpus
// entries. Crashes and sanitizer reports abort the process, which is the
// CI failure signal. With clang and -DASREL_LIBFUZZER=ON the same target
// object links against the real libFuzzer instead of this driver.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace asrel::testing {

using FuzzTarget = int (*)(const std::uint8_t* data, std::size_t size);

struct FuzzDriverOptions {
  std::vector<std::string> corpus_dirs;
  std::uint64_t seed = 1;
  long iterations = 10000;
  std::size_t max_len = 1 << 16;
  /// When set, write the target's synthesized seeds into this directory
  /// (used to materialize binary corpora from code) and exit.
  std::string emit_seeds_dir;
};

/// Parses `--seed N --iterations N --max-len N --emit-seeds DIR` plus bare
/// corpus directory arguments. Returns false (after printing usage) on an
/// unknown flag.
[[nodiscard]] bool parse_fuzz_driver_args(int argc, char** argv,
                                          FuzzDriverOptions* options);

/// Replays corpus files, then mutates for `options.iterations` rounds.
/// `synthesized_seeds` are treated as extra corpus entries that live in the
/// binary (every target provides at least one so an empty corpus dir still
/// fuzzes meaningfully). Returns the process exit code.
int run_fuzz_driver(const FuzzDriverOptions& options, FuzzTarget target,
                    const std::vector<std::string>& synthesized_seeds);

/// Convenience main body used by fuzz/standalone_main.cpp.
int fuzz_driver_main(int argc, char** argv, FuzzTarget target,
                     const std::vector<std::string>& synthesized_seeds);

}  // namespace asrel::testing
