// Minimal property-based testing driver with shrinking.
//
// A property check runs `cases` generated inputs through a predicate; the
// first failure is shrunk greedily (repeatedly replaced by the smallest
// failing candidate a user-supplied shrinker proposes) before being
// reported. The counterexample plus the case seed land in the failure
// message, so any red run is reproducible with a one-line unit test.
//
// The framework is deliberately tiny — three function objects and a loop —
// because the interesting logic lives in the generators (scenario knobs,
// ASN permutations, raw byte mutations in mutate.hpp), not the driver.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "testing/prng.hpp"

namespace asrel::testing {

struct PropertyConfig {
  std::uint64_t seed = 0xA5BE11;
  int cases = 50;
  int max_shrink_steps = 200;
};

template <typename T>
struct PropertyResult {
  bool ok = true;
  std::string message;          ///< failure description from the predicate
  std::optional<T> counterexample;
  std::uint64_t failing_seed = 0;  ///< seed of the failing case's Rng
  int failing_case = -1;
  int shrink_steps = 0;

  explicit operator bool() const { return ok; }
};

/// Runs `property` against `cases` inputs drawn from `generate`.
///   generate: (Rng&) -> T
///   property: (const T&) -> std::optional<std::string>  (nullopt = pass)
///   shrink:   (const T&) -> std::vector<T>              (may be empty)
template <typename T>
PropertyResult<T> check_property(
    const PropertyConfig& config,
    const std::function<T(Rng&)>& generate,
    const std::function<std::optional<std::string>(const T&)>& property,
    const std::function<std::vector<T>(const T&)>& shrink = nullptr) {
  Rng master{config.seed};
  for (int case_index = 0; case_index < config.cases; ++case_index) {
    const std::uint64_t case_seed = master.next();
    Rng rng{case_seed};
    T input = generate(rng);
    auto failure = property(input);
    if (!failure) continue;

    PropertyResult<T> result;
    result.ok = false;
    result.failing_seed = case_seed;
    result.failing_case = case_index;

    // Greedy shrink: adopt the first failing candidate each round.
    if (shrink) {
      bool progressed = true;
      while (progressed && result.shrink_steps < config.max_shrink_steps) {
        progressed = false;
        for (T& candidate : shrink(input)) {
          if (result.shrink_steps >= config.max_shrink_steps) break;
          ++result.shrink_steps;
          if (auto shrunk_failure = property(candidate)) {
            input = std::move(candidate);
            failure = std::move(shrunk_failure);
            progressed = true;
            break;
          }
        }
      }
    }
    result.message = *failure;
    result.counterexample = std::move(input);
    return result;
  }
  return {};
}

}  // namespace asrel::testing
