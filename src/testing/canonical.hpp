// The canonical seed scenario and its golden reports.
//
// One place defines the world every correctness gate agrees on: the test
// suite's shared scenario, the golden files under tests/golden/, and
// tools/asrel_golden all build from canonical_scenario_params(). Changing
// these parameters is a deliberate act that forces a golden-file update in
// the same PR — exactly the review hook the golden layer exists for.
#pragma once

#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace asrel::testing {

/// 2500 ASes, topology seed 42, 120 vantage points: big enough that every
/// §5/§6 class is populated, small enough to build in about a second.
[[nodiscard]] core::ScenarioParams canonical_scenario_params();

/// One golden artifact: the file name under tests/golden/ and its exact
/// byte content (JSON emitted by the serving layer).
struct GoldenReport {
  std::string filename;
  std::string json;
};

/// Builds the Fig. 1/2 coverage reports and the Table 1-3 validation
/// tables for `scenario` via the snapshot + QueryEngine path, so the
/// golden files also pin the serialization format's semantics. Output
/// order and bytes are deterministic.
[[nodiscard]] std::vector<GoldenReport> build_golden_reports(
    const core::Scenario& scenario);

}  // namespace asrel::testing
