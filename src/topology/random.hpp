// Deterministic sampling helpers.
//
// std::mt19937_64 is fully specified, but the standard *distributions* are
// not (their algorithms are implementation-defined), so the same seed could
// yield different worlds on different standard libraries. Everything here is
// implemented directly on top of the engine to keep generated scenarios
// bit-identical across platforms.
#pragma once

#include <cassert>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace asrel::topo {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform() {
    // 53 random mantissa bits, the usual (engine() >> 11) * 2^-53 trick.
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t value = engine_();
    while (value >= limit) value = engine_();
    return value % bound;
  }

  /// Bernoulli trial.
  bool chance(double probability) { return uniform() < probability; }

  /// Index drawn proportionally to `weights` (non-negative, not all zero).
  std::size_t weighted(std::span<const double> weights) {
    double total = 0;
    for (const double w : weights) total += w;
    assert(total > 0);
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Geometric count: number of successes with probability `p` before the
  /// first failure, capped at `cap`. Used for "1 + geometric" multihoming.
  unsigned geometric(double p, unsigned cap) {
    unsigned count = 0;
    while (count < cap && chance(p)) ++count;
    return count;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[below(i)]);
    }
  }

  /// One element drawn uniformly. Container must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& values) {
    return values[below(values.size())];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace asrel::topo
