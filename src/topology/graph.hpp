// The ground-truth AS interconnection graph.
//
// Nodes are ASNs; edges carry a relationship type plus the annotations the
// paper cares about: partial-transit export scopes (§6.1) and hybrid,
// PoP-dependent relationships (§3.1/§4.2). P2C edges are directed
// provider -> customer; P2P/S2S edges are undirected but stored once with a
// canonical (lower ASN first) orientation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "asn/asn.hpp"
#include "topology/rel_type.hpp"

namespace asrel::topo {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

using EdgeId = std::uint32_t;

struct Edge {
  NodeId u = kInvalidNode;  ///< provider for kP2C
  NodeId v = kInvalidNode;  ///< customer for kP2C
  RelType rel = RelType::kP2P;

  /// Export scope of the provider for this customer's routes (kP2C only).
  ExportScope scope = ExportScope::kFull;

  /// True if the restricted scope is requested by the customer via a BGP
  /// action community (visible through a looking glass) rather than being a
  /// silent provider-side configuration.
  bool scope_via_community = false;

  /// Relationship at a second PoP, if it differs (hybrid relationship).
  /// For kP2C-as-secondary the provider is the lower-indexed endpoint `u`.
  std::optional<RelType> hybrid_rel;

  /// The published community documentation for this link is wrong: the
  /// decoder recovers the opposite relationship (§6.1 found exactly one
  /// such case in the Cogent study).
  bool misdocumented = false;

  /// Tombstone set by remove_edge: the edge stays in the edge table so
  /// EdgeIds remain stable (cached per-origin ribs reference them), but it
  /// is absent from both adjacency lists and skipped by every consumer
  /// that walks edges(). The endpoints u/v stay valid so the incremental
  /// propagator can seed its dirty frontier from a removal event.
  bool removed = false;

  [[nodiscard]] bool is_hybrid() const { return hybrid_rel.has_value(); }
};

/// One adjacency entry as seen from a node.
struct Neighbor {
  NodeId node = kInvalidNode;
  EdgeId edge = 0;
  /// Relationship from the perspective of the owning node:
  /// kP2C here means "I am the provider"; kC2P mirrors it.
  enum class Role : std::uint8_t { kProvider, kCustomer, kPeer, kSibling };
  Role role = Role::kPeer;
};

class AsGraph {
 public:
  /// Adds a node; returns its dense id (idempotent for known ASNs).
  NodeId add_node(asn::Asn asn);

  /// Adds an edge. For kP2C, `a` is the provider and `b` the customer.
  /// For kP2P/kS2S the order of a/b does not matter. Duplicate edges between
  /// the same pair are rejected (returns nullopt); self-loops are rejected.
  std::optional<EdgeId> add_edge(asn::Asn a, asn::Asn b, RelType rel);

  /// Full-control overload used by the generator.
  std::optional<EdgeId> add_edge(asn::Asn a, asn::Asn b, const Edge& proto);

  // ---- streaming mutation API (src/stream) ----
  // Mutations keep EdgeIds stable: removal tombstones the slot, and a
  // later re-add of the same AS pair appends a fresh edge.

  /// Tombstones an edge: clears both adjacency entries and marks it
  /// removed. Returns false for an out-of-range or already-removed id.
  bool remove_edge(EdgeId id);

  /// Rewrites an edge's relationship in place. For kP2C, `provider` names
  /// the provider-side node (must be one of the endpoints); the edge is
  /// re-oriented so u is the provider. For kP2P/kS2S the canonical
  /// lower-ASN-first orientation is restored. The export scope resets to
  /// kFull and any hybrid annotation is dropped — a flipped link starts
  /// from a clean policy slate. Adjacency roles are patched on both sides.
  bool set_edge_rel(EdgeId id, RelType rel, NodeId provider);

  /// Rewrites a kP2C edge's export scope (§6.1 partial-transit policy).
  /// Returns false for removed ids or non-P2C edges.
  bool set_edge_scope(EdgeId id, ExportScope scope, bool via_community);

  /// Replaces the whole edge table (checkpoint restore) and rebuilds the
  /// adjacency lists from it. Every mutation above keeps each adjacency
  /// list sorted by ascending edge id — appends use strictly increasing
  /// ids and removals/patches preserve relative order — so replaying the
  /// edge table in id order reconstructs the lists byte-identically and
  /// the checkpoint never needs to persist them. Node ids in `edges` must
  /// already be valid for this graph's node set.
  void restore_edges(std::vector<Edge> edges);

  /// Edges minus tombstones (edge_count() includes removed slots).
  [[nodiscard]] std::size_t live_edge_count() const {
    return live_edge_count_;
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] std::optional<NodeId> node_of(asn::Asn asn) const;
  [[nodiscard]] asn::Asn asn_of(NodeId node) const { return nodes_[node]; }
  [[nodiscard]] std::span<const asn::Asn> nodes() const { return nodes_; }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }
  [[nodiscard]] const Edge& edge(EdgeId id) const { return edges_[id]; }
  Edge& mutable_edge(EdgeId id) { return edges_[id]; }

  [[nodiscard]] std::span<const Neighbor> neighbors(NodeId node) const {
    return adjacency_[node];
  }

  [[nodiscard]] std::optional<EdgeId> find_edge(asn::Asn a, asn::Asn b) const;

  /// Ground-truth relationship between two ASNs (primary PoP), from a's
  /// perspective; nullopt if no edge.
  [[nodiscard]] std::optional<Neighbor::Role> role_of(asn::Asn a,
                                                      asn::Asn b) const;

  [[nodiscard]] std::vector<asn::Asn> providers_of(asn::Asn asn) const;
  [[nodiscard]] std::vector<asn::Asn> customers_of(asn::Asn asn) const;
  [[nodiscard]] std::vector<asn::Asn> peers_of(asn::Asn asn) const;

  [[nodiscard]] std::size_t degree(NodeId node) const {
    return adjacency_[node].size();
  }

 private:
  std::vector<asn::Asn> nodes_;
  std::unordered_map<asn::Asn, NodeId> index_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Neighbor>> adjacency_;
  std::size_t live_edge_count_ = 0;
};

}  // namespace asrel::topo
