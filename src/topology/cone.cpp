#include "topology/cone.hpp"

#include <algorithm>
#include <unordered_set>

namespace asrel::topo {

std::vector<asn::Asn> customer_cone(const AsGraph& graph, asn::Asn asn) {
  std::vector<asn::Asn> out;
  const auto start = graph.node_of(asn);
  if (!start) return out;

  std::vector<bool> visited(graph.node_count(), false);
  std::vector<NodeId> stack{*start};
  visited[*start] = true;
  while (!stack.empty()) {
    const NodeId node = stack.back();
    stack.pop_back();
    for (const auto& neighbor : graph.neighbors(node)) {
      if (neighbor.role != Neighbor::Role::kProvider) continue;
      if (visited[neighbor.node]) continue;
      visited[neighbor.node] = true;
      out.push_back(graph.asn_of(neighbor.node));
      stack.push_back(neighbor.node);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> customer_cone_sizes(const AsGraph& graph) {
  // Per-node DFS with memoized cone sets would need O(V^2) memory in the
  // worst case; instead run one bounded DFS per node counting reachable
  // customers. The P2C subgraph is shallow (hierarchy depth ~5), so this is
  // fast in practice and exact in all cases, including cycles.
  const std::size_t n = graph.node_count();
  std::vector<std::uint32_t> sizes(n, 0);
  std::vector<std::uint32_t> mark(n, ~std::uint32_t{0});
  std::vector<NodeId> stack;

  for (NodeId start = 0; start < n; ++start) {
    std::uint32_t count = 0;
    stack.assign(1, start);
    mark[start] = start;
    while (!stack.empty()) {
      const NodeId node = stack.back();
      stack.pop_back();
      for (const auto& neighbor : graph.neighbors(node)) {
        if (neighbor.role != Neighbor::Role::kProvider) continue;
        if (mark[neighbor.node] == start) continue;
        mark[neighbor.node] = start;
        ++count;
        stack.push_back(neighbor.node);
      }
    }
    sizes[start] = count;
  }
  return sizes;
}

bool is_transit_as(const AsGraph& graph, asn::Asn asn) {
  const auto node = graph.node_of(asn);
  if (!node) return false;
  const auto neighbors = graph.neighbors(*node);
  return std::any_of(neighbors.begin(), neighbors.end(), [](const auto& nb) {
    return nb.role == Neighbor::Role::kProvider;
  });
}

}  // namespace asrel::topo
