// Per-AS attributes: where an AS sits (region, tier, hypergiant flag) and
// how its operators behave (community documentation, RPSL maintenance,
// meeting attendance, prepending). The behavioural attributes drive the
// validation-data compilation and are exactly the mechanisms the paper names
// as sources of bias (§2, §5, §7).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asn/asn.hpp"
#include "rir/region.hpp"

namespace asrel::topo {

/// Position in the transit hierarchy, assigned by the generator.
enum class Tier : std::uint8_t {
  kClique,        ///< provider-free Tier-1 (paper class T1)
  kLargeTransit,  ///< continental/national carrier
  kMidTransit,    ///< regional transit provider
  kSmallTransit,  ///< local ISP with a handful of customers
  kStub,          ///< no customers (paper class S)
};

[[nodiscard]] constexpr std::string_view to_string(Tier tier) {
  switch (tier) {
    case Tier::kClique:
      return "clique";
    case Tier::kLargeTransit:
      return "large-transit";
    case Tier::kMidTransit:
      return "mid-transit";
    case Tier::kSmallTransit:
      return "small-transit";
    case Tier::kStub:
      return "stub";
  }
  return "?";
}

/// Stub business models (§6: the paper attributes the S-T1 peering confusion
/// to "the broad aggregation of many diverse business models into a single
/// Stub class").
enum class StubKind : std::uint8_t {
  kEyeball,     ///< access network, plain customer
  kEnterprise,  ///< multihomed enterprise
  kResearch,    ///< research/education network, peers widely
  kAnycastDns,  ///< anycast DNS provider, peers with Tier-1s
  kCdn,         ///< content delivery network
  kCloud,       ///< cloud provider
  kNotStub,     ///< placeholder for transit ASes
};

struct AsAttributes {
  rir::Region region = rir::Region::kUnknown;
  std::string country = "ZZ";
  Tier tier = Tier::kStub;
  StubKind stub_kind = StubKind::kNotStub;
  bool hypergiant = false;

  /// Operator behaviour (drives validation bias):
  bool documents_communities = false;  ///< publishes community meanings
  bool maintains_rpsl = false;         ///< keeps autnum import/export fresh
  bool attends_meetings = false;       ///< candidate for direct reports
  bool strips_communities = false;     ///< removes communities on export
  double prepend_propensity = 0.0;     ///< chance to prepend on export

  [[nodiscard]] bool is_transit() const { return tier != Tier::kStub; }
  [[nodiscard]] bool is_tier1() const { return tier == Tier::kClique; }

  friend bool operator==(const AsAttributes&, const AsAttributes&) = default;
};

/// Attribute store keyed by ASN.
class AsAttributeMap {
 public:
  AsAttributes& operator[](asn::Asn asn) { return map_[asn]; }

  [[nodiscard]] const AsAttributes& at(asn::Asn asn) const {
    static const AsAttributes kDefault{};
    const auto it = map_.find(asn);
    return it == map_.end() ? kDefault : it->second;
  }

  [[nodiscard]] bool contains(asn::Asn asn) const {
    return map_.contains(asn);
  }
  [[nodiscard]] std::size_t size() const { return map_.size(); }

  [[nodiscard]] std::vector<asn::Asn> asns_where(auto&& predicate) const {
    std::vector<asn::Asn> out;
    for (const auto& [asn, attrs] : map_) {
      if (predicate(attrs)) out.push_back(asn);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

 private:
  std::unordered_map<asn::Asn, AsAttributes> map_;
};

}  // namespace asrel::topo
