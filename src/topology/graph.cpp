#include "topology/graph.hpp"

#include <algorithm>

namespace asrel::topo {

NodeId AsGraph::add_node(asn::Asn asn) {
  if (const auto it = index_.find(asn); it != index_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(asn);
  adjacency_.emplace_back();
  index_.emplace(asn, id);
  return id;
}

std::optional<EdgeId> AsGraph::add_edge(asn::Asn a, asn::Asn b, RelType rel) {
  Edge proto;
  proto.rel = rel;
  return add_edge(a, b, proto);
}

std::optional<EdgeId> AsGraph::add_edge(asn::Asn a, asn::Asn b,
                                        const Edge& proto) {
  if (a == b) return std::nullopt;
  if (find_edge(a, b)) return std::nullopt;
  const NodeId na = add_node(a);
  const NodeId nb = add_node(b);

  Edge edge = proto;
  if (edge.rel == RelType::kP2C) {
    edge.u = na;  // provider
    edge.v = nb;  // customer
  } else {
    // Canonical orientation: lower ASN first.
    edge.u = a < b ? na : nb;
    edge.v = a < b ? nb : na;
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(edge);

  const auto role_from = [&](NodeId self) {
    switch (edge.rel) {
      case RelType::kP2C:
        return self == edge.u ? Neighbor::Role::kProvider
                              : Neighbor::Role::kCustomer;
      case RelType::kP2P:
        return Neighbor::Role::kPeer;
      case RelType::kS2S:
        return Neighbor::Role::kSibling;
    }
    return Neighbor::Role::kPeer;
  };
  adjacency_[na].push_back({nb, id, role_from(na)});
  adjacency_[nb].push_back({na, id, role_from(nb)});
  ++live_edge_count_;
  return id;
}

namespace {

Neighbor::Role role_on_edge(const Edge& edge, NodeId self) {
  switch (edge.rel) {
    case RelType::kP2C:
      return self == edge.u ? Neighbor::Role::kProvider
                            : Neighbor::Role::kCustomer;
    case RelType::kP2P:
      return Neighbor::Role::kPeer;
    case RelType::kS2S:
      return Neighbor::Role::kSibling;
  }
  return Neighbor::Role::kPeer;
}

}  // namespace

bool AsGraph::remove_edge(EdgeId id) {
  if (id >= edges_.size() || edges_[id].removed) return false;
  Edge& edge = edges_[id];
  const auto drop_entry = [&](NodeId node) {
    auto& adjacency = adjacency_[node];
    for (auto it = adjacency.begin(); it != adjacency.end(); ++it) {
      if (it->edge == id) {
        adjacency.erase(it);
        return;
      }
    }
  };
  drop_entry(edge.u);
  drop_entry(edge.v);
  edge.removed = true;
  --live_edge_count_;
  return true;
}

bool AsGraph::set_edge_rel(EdgeId id, RelType rel, NodeId provider) {
  if (id >= edges_.size() || edges_[id].removed) return false;
  Edge& edge = edges_[id];
  if (rel == RelType::kP2C) {
    if (provider != edge.u && provider != edge.v) return false;
    if (provider != edge.u) std::swap(edge.u, edge.v);
  } else {
    // Canonical lower-ASN-first orientation, matching add_edge.
    if (asn_of(edge.v) < asn_of(edge.u)) std::swap(edge.u, edge.v);
  }
  edge.rel = rel;
  edge.scope = ExportScope::kFull;
  edge.scope_via_community = false;
  edge.hybrid_rel.reset();
  const auto patch_entry = [&](NodeId node) {
    for (auto& neighbor : adjacency_[node]) {
      if (neighbor.edge == id) {
        neighbor.role = role_on_edge(edge, node);
        return;
      }
    }
  };
  patch_entry(edge.u);
  patch_entry(edge.v);
  return true;
}

void AsGraph::restore_edges(std::vector<Edge> edges) {
  edges_ = std::move(edges);
  adjacency_.assign(nodes_.size(), {});
  live_edge_count_ = 0;
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& edge = edges_[id];
    if (edge.removed) continue;
    adjacency_[edge.u].push_back({edge.v, id, role_on_edge(edge, edge.u)});
    adjacency_[edge.v].push_back({edge.u, id, role_on_edge(edge, edge.v)});
    ++live_edge_count_;
  }
}

bool AsGraph::set_edge_scope(EdgeId id, ExportScope scope,
                             bool via_community) {
  if (id >= edges_.size() || edges_[id].removed) return false;
  Edge& edge = edges_[id];
  if (edge.rel != RelType::kP2C) return false;
  edge.scope = scope;
  edge.scope_via_community = via_community;
  return true;
}

std::optional<NodeId> AsGraph::node_of(asn::Asn asn) const {
  const auto it = index_.find(asn);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::optional<EdgeId> AsGraph::find_edge(asn::Asn a, asn::Asn b) const {
  const auto na = node_of(a);
  const auto nb = node_of(b);
  if (!na || !nb) return std::nullopt;
  // Scan the smaller adjacency list.
  const NodeId from = degree(*na) <= degree(*nb) ? *na : *nb;
  const NodeId to = from == *na ? *nb : *na;
  for (const auto& neighbor : adjacency_[from]) {
    if (neighbor.node == to) return neighbor.edge;
  }
  return std::nullopt;
}

std::optional<Neighbor::Role> AsGraph::role_of(asn::Asn a, asn::Asn b) const {
  const auto na = node_of(a);
  const auto nb = node_of(b);
  if (!na || !nb) return std::nullopt;
  for (const auto& neighbor : adjacency_[*na]) {
    if (neighbor.node == *nb) return neighbor.role;
  }
  return std::nullopt;
}

namespace {

std::vector<asn::Asn> collect_by_role(const AsGraph& graph, asn::Asn asn,
                                      Neighbor::Role role) {
  std::vector<asn::Asn> out;
  const auto node = graph.node_of(asn);
  if (!node) return out;
  for (const auto& neighbor : graph.neighbors(*node)) {
    if (neighbor.role == role) out.push_back(graph.asn_of(neighbor.node));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<asn::Asn> AsGraph::providers_of(asn::Asn asn) const {
  return collect_by_role(*this, asn, Neighbor::Role::kCustomer);
}

std::vector<asn::Asn> AsGraph::customers_of(asn::Asn asn) const {
  return collect_by_role(*this, asn, Neighbor::Role::kProvider);
}

std::vector<asn::Asn> AsGraph::peers_of(asn::Asn asn) const {
  return collect_by_role(*this, asn, Neighbor::Role::kPeer);
}

}  // namespace asrel::topo
