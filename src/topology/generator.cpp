#include "topology/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <string>

#include "rir/iana_table.hpp"
#include "topology/random.hpp"

namespace asrel::topo {

namespace {

using asn::Asn;
using rir::Region;

constexpr std::size_t index_of(Region region) {
  return static_cast<std::size_t>(region);
}

const std::vector<std::string>& countries_of(Region region) {
  static const std::vector<std::string> kAf{"ZA", "NG", "KE", "EG", "GH"};
  static const std::vector<std::string> kAp{"CN", "IN", "JP", "AU",
                                            "ID", "SG", "HK", "KR"};
  static const std::vector<std::string> kAr{"US", "US", "US", "CA"};
  static const std::vector<std::string> kL{"BR", "AR", "CL", "MX", "CO"};
  static const std::vector<std::string> kR{"DE", "GB", "FR", "NL",
                                           "RU", "IT", "SE", "PL"};
  static const std::vector<std::string> kUnknown{"ZZ"};
  switch (region) {
    case Region::kAfrinic:
      return kAf;
    case Region::kApnic:
      return kAp;
    case Region::kArin:
      return kAr;
    case Region::kLacnic:
      return kL;
    case Region::kRipe:
      return kR;
    case Region::kUnknown:
      return kUnknown;
  }
  return kUnknown;
}

/// First-octet pools for per-region IPv4 allocations (loosely modeled on the
/// real RIR address holdings; only used to make delegation files and
/// originated prefixes look plausible).
const std::vector<std::uint8_t>& octets_of(Region region) {
  static const std::vector<std::uint8_t> kAf{41, 102, 105, 154, 196, 197};
  static const std::vector<std::uint8_t> kAp{1,   14,  27,  36,  39, 42,
                                             58,  59,  60,  61,  101, 103,
                                             106, 110, 111, 112, 113, 114};
  static const std::vector<std::uint8_t> kAr{3,  4,  6,  7,  8,  9,  11, 12,
                                             13, 15, 16, 18, 20, 23, 24, 26,
                                             32, 34, 35, 40, 44, 45, 47, 50};
  static const std::vector<std::uint8_t> kL{177, 179, 181, 186, 187,
                                            189, 190, 191, 200, 201};
  static const std::vector<std::uint8_t> kR{2,  5,  31, 37, 46, 62, 77, 78,
                                            79, 80, 81, 82, 83, 84, 85, 86,
                                            87, 88, 89, 90, 91, 92, 93, 94};
  static const std::vector<std::uint8_t> kUnknown{10};
  switch (region) {
    case Region::kAfrinic:
      return kAf;
    case Region::kApnic:
      return kAp;
    case Region::kArin:
      return kAr;
    case Region::kLacnic:
      return kL;
    case Region::kRipe:
      return kR;
    case Region::kUnknown:
      return kUnknown;
  }
  return kUnknown;
}

/// Peering openness scale per AS, used inside IXPs. Larger networks run
/// restrictive policies; content-heavy networks run open ones (cf. Lodhi et
/// al. [42] in the paper).
double openness(const AsAttributes& attrs) {
  if (attrs.hypergiant) return 1.0;
  switch (attrs.tier) {
    case Tier::kClique:
      return 0.03;
    case Tier::kLargeTransit:
      return 0.15;
    case Tier::kMidTransit:
      return 0.45;
    case Tier::kSmallTransit:
      return 0.9;
    case Tier::kStub:
      break;
  }
  switch (attrs.stub_kind) {
    case StubKind::kResearch:
      return 0.8;
    case StubKind::kAnycastDns:
      return 0.9;
    case StubKind::kCdn:
    case StubKind::kCloud:
      return 0.8;
    case StubKind::kEnterprise:
      return 0.3;
    case StubKind::kEyeball:
    default:
      return 0.3;
  }
}

class Builder {
 public:
  explicit Builder(const TopologyParams& params)
      : params_(params), rng_(params.seed) {}

  World build() {
    world_.params = params_;
    allocate_asns();
    assign_tiers_and_attributes();
    wire_clique();
    wire_transit_hierarchy();
    wire_stub_providers();
    wire_ixps();
    wire_direct_peering();
    configure_partial_transit();
    mark_hybrid_links();
    build_sibling_orgs();
    allocate_prefixes();
    synthesize_delegations();
    return std::move(world_);
  }

 private:
  // ---- ASN allocation -----------------------------------------------------

  void allocate_asns() {
    // ASN pools per region, drawn from the IANA block table.
    std::array<std::vector<Asn>, 5> pools;
    for (const auto& block : rir::iana_asn_blocks()) {
      auto& pool = pools[index_of(block.region)];
      for (std::uint64_t v = block.range.first.value();
           v <= block.range.last.value(); ++v) {
        pool.push_back(Asn{static_cast<std::uint32_t>(v)});
      }
    }
    for (auto& pool : pools) rng_.shuffle(pool);
    std::array<std::size_t, 5> next{};  // consumption cursor per pool

    // Region head counts from the profile weights.
    double total_weight = 0;
    for (const auto region : rir::kAllRegions) {
      total_weight += params_.profile(region).as_weight;
    }
    std::array<int, 5> counts{};
    int assigned = 0;
    for (const auto region : rir::kAllRegions) {
      const auto idx = index_of(region);
      counts[idx] = static_cast<int>(params_.as_count *
                                     params_.profile(region).as_weight /
                                     total_weight);
      assigned += counts[idx];
    }
    counts[index_of(Region::kRipe)] += params_.as_count - assigned;

    const auto draw_asn = [&](Region home) {
      // With a small probability the ASN comes from a block IANA gave to a
      // *different* region (inter-RIR transfer); the delegation file still
      // records the true service region.
      std::size_t pool_idx = index_of(home);
      if (rng_.chance(params_.transferred_fraction)) {
        pool_idx = rng_.below(5);
      }
      // Fall back to the home pool if the chosen one ran dry.
      if (next[pool_idx] >= pools[pool_idx].size())
        pool_idx = index_of(home);
      assert(next[pool_idx] < pools[pool_idx].size());
      return pools[pool_idx][next[pool_idx]++];
    };

    for (const auto region : rir::kAllRegions) {
      auto& members = region_ases_[index_of(region)];
      members.reserve(static_cast<std::size_t>(counts[index_of(region)]));
      for (int i = 0; i < counts[index_of(region)]; ++i) {
        const Asn asn = draw_asn(region);
        members.push_back(asn);
        auto& attrs = world_.attrs[asn];
        attrs.region = region;
        attrs.country = rng_.pick(countries_of(region));
        world_.graph.add_node(asn);
      }
    }
  }

  // ---- Tier & behaviour assignment ---------------------------------------

  void assign_tiers_and_attributes() {
    for (const auto region : rir::kAllRegions) {
      const auto idx = index_of(region);
      const auto& profile = params_.profile(region);
      auto members = region_ases_[idx];  // copy; keep original order stable
      rng_.shuffle(members);
      std::size_t cursor = 0;

      // Clique members first.
      for (int i = 0; i < params_.clique_by_region[idx] &&
                      cursor < members.size();
           ++i) {
        const Asn asn = members[cursor++];
        world_.attrs[asn].tier = Tier::kClique;
        world_.clique.push_back(asn);
      }
      // Hypergiants: content-heavy stubs with open peering everywhere.
      for (int i = 0; i < params_.hypergiants_by_region[idx] &&
                      cursor < members.size();
           ++i) {
        const Asn asn = members[cursor++];
        auto& attrs = world_.attrs[asn];
        attrs.tier = Tier::kStub;
        attrs.stub_kind = rng_.chance(0.5) ? StubKind::kCdn : StubKind::kCloud;
        attrs.hypergiant = true;
        world_.hypergiants.push_back(asn);
      }
      // Transit tiers.
      const auto remaining = members.size() - cursor;
      const auto transit_count =
          static_cast<std::size_t>(profile.transit_fraction *
                                   static_cast<double>(remaining));
      const auto large_count = static_cast<std::size_t>(
          params_.transit_large_fraction * static_cast<double>(transit_count));
      const auto mid_count = static_cast<std::size_t>(
          params_.transit_mid_fraction * static_cast<double>(transit_count));
      for (std::size_t i = 0; i < transit_count && cursor < members.size();
           ++i) {
        const Asn asn = members[cursor++];
        auto& attrs = world_.attrs[asn];
        if (i < large_count) {
          attrs.tier = Tier::kLargeTransit;
          tier_list(region, Tier::kLargeTransit).push_back(asn);
        } else if (i < large_count + mid_count) {
          attrs.tier = Tier::kMidTransit;
          tier_list(region, Tier::kMidTransit).push_back(asn);
        } else {
          attrs.tier = Tier::kSmallTransit;
          tier_list(region, Tier::kSmallTransit).push_back(asn);
        }
      }
      // Everything else is a stub with a sampled business model.
      while (cursor < members.size()) {
        const Asn asn = members[cursor++];
        auto& attrs = world_.attrs[asn];
        attrs.tier = Tier::kStub;
        attrs.stub_kind = sample_stub_kind();
        stubs_[idx].push_back(asn);
      }

      // Behaviour flags for every AS of the region.
      for (const Asn asn : region_ases_[idx]) {
        auto& attrs = world_.attrs[asn];
        const bool transit_like =
            attrs.tier != Tier::kStub || attrs.hypergiant;
        const auto& factors = params_.doc_factors;
        double doc_prob = profile.doc_communities_stub;
        switch (attrs.tier) {
          case Tier::kLargeTransit:
            doc_prob = profile.doc_communities_transit * factors.large;
            break;
          case Tier::kMidTransit:
            doc_prob = profile.doc_communities_transit * factors.mid;
            break;
          case Tier::kSmallTransit:
            doc_prob = profile.doc_communities_transit * factors.small;
            break;
          default:
            break;
        }
        if (attrs.hypergiant) {
          doc_prob = profile.doc_communities_transit * factors.large;
        }
        attrs.documents_communities = rng_.chance(doc_prob);
        attrs.maintains_rpsl = rng_.chance(profile.maintains_rpsl *
                                           (transit_like ? 1.5 : 0.6));
        attrs.attends_meetings = rng_.chance(profile.attends_meetings *
                                             (transit_like ? 2.0 : 0.5));
        attrs.strips_communities = rng_.chance(
            profile.strips_communities * (transit_like ? 0.7 : 1.2));
        attrs.prepend_propensity =
            profile.prepend_propensity * (0.5 + rng_.uniform());
        // Clique members document communities at their own (high) rate and
        // show up at meetings (they are the best-covered networks in the
        // paper's data).
        if (attrs.tier == Tier::kClique) {
          attrs.documents_communities =
              rng_.chance(params_.doc_factors.clique_prob);
          attrs.attends_meetings = true;
          attrs.maintains_rpsl = true;
          // Tier-1 carriers keep communities intact; their collector feeds
          // are exactly where the community validation labels come from.
          attrs.strips_communities = rng_.chance(0.05);
        }
      }
    }
  }

  StubKind sample_stub_kind() {
    static constexpr double kWeights[] = {0.55, 0.30, 0.06, 0.02, 0.04, 0.03};
    static constexpr StubKind kKinds[] = {
        StubKind::kEyeball,  StubKind::kEnterprise, StubKind::kResearch,
        StubKind::kAnycastDns, StubKind::kCdn,      StubKind::kCloud};
    return kKinds[rng_.weighted(kWeights)];
  }

  // ---- Wiring -------------------------------------------------------------

  void wire_clique() {
    for (std::size_t i = 0; i < world_.clique.size(); ++i) {
      for (std::size_t j = i + 1; j < world_.clique.size(); ++j) {
        world_.graph.add_edge(world_.clique[i], world_.clique[j],
                              RelType::kP2P);
      }
    }
    // The Cogent analogue: first ARIN clique member (falls back to clique[0]).
    world_.cogent_like = world_.clique.front();
    for (const Asn asn : world_.clique) {
      if (world_.attrs.at(asn).region == Region::kArin) {
        world_.cogent_like = asn;
        break;
      }
    }
  }

  void add_p2c(Asn provider, Asn customer) {
    if (world_.graph.add_edge(provider, customer, RelType::kP2C)) {
      ++customer_count_[provider];
    }
  }

  /// Tournament selection approximating preferential attachment: draw a few
  /// uniform candidates and keep the one with the most customers.
  Asn pick_preferential(const std::vector<Asn>& pool) {
    assert(!pool.empty());
    Asn best = rng_.pick(pool);
    for (int i = 0; i < 2; ++i) {
      const Asn candidate = rng_.pick(pool);
      if (customer_count_[candidate] > customer_count_[best]) {
        best = candidate;
      }
    }
    return best;
  }

  /// A provider pool for `region`/`tier`, possibly from another region.
  const std::vector<Asn>& provider_pool(Region region, Tier tier,
                                        bool allow_cross_region) {
    const auto& own = tier_list(region, tier);
    if (!allow_cross_region && !own.empty()) return own;
    // Cross-region fallback: pick a random region with a non-empty list,
    // weighted toward the big transit markets (ARIN/RIPE).
    static constexpr double kRegionWeights[] = {0.05, 0.15, 0.4, 0.05, 0.35};
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto idx = rng_.weighted(kRegionWeights);
      const auto& pool =
          tier_list(static_cast<Region>(idx), tier);
      if (!pool.empty()) return pool;
    }
    return own.empty() ? world_.clique : own;
  }

  void wire_transit_hierarchy() {
    // Large transits buy from several clique members (and will later also
    // peer with some — the true P2P portion of the T1-TR class).
    for (const auto region : rir::kAllRegions) {
      for (const Asn asn : tier_list(region, Tier::kLargeTransit)) {
        const unsigned count =
            3 + rng_.geometric(params_.transit_extra_provider_p, 3);
        for (unsigned i = 0; i < count; ++i) {
          add_p2c(rng_.pick(world_.clique), asn);
        }
      }
    }
    // Mid transits: mostly large transits of the same region, some clique.
    for (const auto region : rir::kAllRegions) {
      const auto& profile = params_.profile(region);
      for (const Asn asn : tier_list(region, Tier::kMidTransit)) {
        const unsigned count =
            1 + rng_.geometric(params_.transit_extra_provider_p,
                               params_.transit_provider_cap - 1);
        for (unsigned i = 0; i < count; ++i) {
          static constexpr double kChoice[] = {0.5, 0.3, 0.2};
          switch (rng_.weighted(kChoice)) {
            case 0:
              add_p2c(pick_preferential(provider_pool(
                          region, Tier::kLargeTransit, false)),
                      asn);
              break;
            case 1:
              add_p2c(rng_.pick(world_.clique), asn);
              break;
            default:
              add_p2c(pick_preferential(provider_pool(
                          region, Tier::kLargeTransit,
                          rng_.chance(profile.cross_region_provider_prob))),
                      asn);
          }
        }
      }
    }
    // Small transits: mid/large of the same region, rarely clique or abroad.
    for (const auto region : rir::kAllRegions) {
      const auto& profile = params_.profile(region);
      for (const Asn asn : tier_list(region, Tier::kSmallTransit)) {
        const unsigned count =
            1 + rng_.geometric(params_.transit_extra_provider_p,
                               params_.transit_provider_cap - 1);
        for (unsigned i = 0; i < count; ++i) {
          static constexpr double kChoice[] = {0.5, 0.28, 0.12, 0.1};
          switch (rng_.weighted(kChoice)) {
            case 0:
              add_p2c(pick_preferential(
                          provider_pool(region, Tier::kMidTransit, false)),
                      asn);
              break;
            case 1:
              add_p2c(pick_preferential(
                          provider_pool(region, Tier::kLargeTransit, false)),
                      asn);
              break;
            case 2:
              add_p2c(rng_.pick(world_.clique), asn);
              break;
            default:
              add_p2c(pick_preferential(provider_pool(
                          region, Tier::kMidTransit,
                          rng_.chance(profile.cross_region_provider_prob))),
                      asn);
          }
        }
      }
    }
  }

  void wire_stub_providers() {
    // Hypergiants first: they are content networks but multihome to several
    // Tier-1s / large transits, and carry a handful of captive customers
    // (subsidiaries, hosted ASes) — which keeps their transit degree
    // non-zero, as in reality.
    for (const Asn giant : world_.hypergiants) {
      const auto region = world_.attrs.at(giant).region;
      const unsigned count = 2 + static_cast<unsigned>(rng_.below(3));
      for (unsigned i = 0; i < count; ++i) {
        if (rng_.chance(0.5)) {
          add_p2c(rng_.pick(world_.clique), giant);
        } else {
          const auto& pool = provider_pool(region, Tier::kLargeTransit, false);
          if (!pool.empty()) add_p2c(pick_preferential(pool), giant);
        }
      }
      const auto& local_stubs = stubs_[index_of(region)];
      if (!local_stubs.empty()) {
        const unsigned captives = 3 + static_cast<unsigned>(rng_.below(5));
        for (unsigned i = 0; i < captives; ++i) {
          add_p2c(giant, rng_.pick(local_stubs));
        }
      }
    }
    for (const auto region : rir::kAllRegions) {
      const auto& profile = params_.profile(region);
      for (const Asn asn : stubs_[index_of(region)]) {
        const unsigned count =
            1 + rng_.geometric(params_.stub_extra_provider_p,
                               params_.stub_provider_cap - 1);
        for (unsigned i = 0; i < count; ++i) {
          if (rng_.chance(profile.t1_provider_prob)) {
            add_p2c(rng_.pick(world_.clique), asn);
            continue;
          }
          const bool cross =
              rng_.chance(profile.cross_region_provider_prob * 0.5);
          static constexpr double kChoice[] = {0.45, 0.35, 0.2};
          Tier tier = Tier::kSmallTransit;
          switch (rng_.weighted(kChoice)) {
            case 0:
              tier = Tier::kSmallTransit;
              break;
            case 1:
              tier = Tier::kMidTransit;
              break;
            default:
              tier = Tier::kLargeTransit;
          }
          const auto& pool = provider_pool(region, tier, cross);
          if (!pool.empty()) add_p2c(pick_preferential(pool), asn);
        }
      }
    }
  }

  void wire_ixps() {
    int ixp_id = 0;
    for (const auto region : rir::kAllRegions) {
      const auto& profile = params_.profile(region);
      for (int i = 0; i < profile.ixp_count; ++i) {
        Ixp ixp;
        ixp.id = ixp_id++;
        ixp.region = region;
        // Local membership.
        for (const Asn asn : region_ases_[index_of(region)]) {
          const auto& attrs = world_.attrs.at(asn);
          double join = 0.0;
          switch (attrs.tier) {
            case Tier::kClique:
              join = 0.05;
              break;
            case Tier::kLargeTransit:
              join = 0.15;  // big carriers avoid route servers
              break;
            case Tier::kMidTransit:
              join = 0.6;
              break;
            case Tier::kSmallTransit:
              join = 0.75;
              break;
            case Tier::kStub:
              join = attrs.stub_kind == StubKind::kEyeball      ? 0.12
                     : attrs.stub_kind == StubKind::kEnterprise ? 0.08
                                                                : 0.45;
              break;
          }
          join /= static_cast<double>(profile.ixp_count);
          if (attrs.hypergiant) join = 0.7;
          if (rng_.chance(join)) ixp.members.push_back(asn);
        }
        // Remote members (remote peering is rare; hypergiants are the
        // exception and were handled above for their own region only).
        for (const Asn asn : world_.hypergiants) {
          if (world_.attrs.at(asn).region == region) continue;
          if (rng_.chance(0.45)) ixp.members.push_back(asn);
        }
        wire_ixp_peering(ixp, profile);
        world_.ixps.push_back(std::move(ixp));
      }
    }
  }

  void wire_ixp_peering(const Ixp& ixp, const RegionProfile& profile) {
    const auto is_rs_tier = [&](const AsAttributes& attrs) {
      return attrs.tier == Tier::kMidTransit ||
             attrs.tier == Tier::kSmallTransit;
    };
    for (std::size_t i = 0; i < ixp.members.size(); ++i) {
      const Asn a = ixp.members[i];
      const auto& attrs_a = world_.attrs.at(a);
      const double open_a = openness(attrs_a);
      for (std::size_t j = i + 1; j < ixp.members.size(); ++j) {
        const Asn b = ixp.members[j];
        const auto& attrs_b = world_.attrs.at(b);
        double p =
            profile.ixp_peering_base * open_a * openness(attrs_b);
        // Route servers: small/mid transit members interconnect
        // multilaterally, which makes transit-transit peering the bulk of
        // the visible TR-TR link mass (Fig. 2/3).
        if (is_rs_tier(attrs_a) && is_rs_tier(attrs_b)) p *= 6.0;
        if (rng_.chance(p)) {
          world_.graph.add_edge(a, b, RelType::kP2P);
        }
      }
    }
  }

  void wire_direct_peering() {
    // Hypergiants: private interconnects with Tier-1s, transits, eyeballs.
    for (const Asn giant : world_.hypergiants) {
      for (const Asn t1 : world_.clique) {
        if (rng_.chance(0.55)) world_.graph.add_edge(giant, t1, RelType::kP2P);
      }
      for (const auto region : rir::kAllRegions) {
        for (const Asn transit : tier_list(region, Tier::kLargeTransit)) {
          if (rng_.chance(0.3))
            world_.graph.add_edge(giant, transit, RelType::kP2P);
        }
        for (const Asn transit : tier_list(region, Tier::kMidTransit)) {
          if (rng_.chance(0.06))
            world_.graph.add_edge(giant, transit, RelType::kP2P);
        }
        // A few eyeball PNIs per region.
        const auto& stubs = stubs_[index_of(region)];
        const std::size_t picks = std::min<std::size_t>(8, stubs.size());
        for (std::size_t k = 0; k < picks; ++k) {
          if (rng_.chance(0.5))
            world_.graph.add_edge(giant, rng_.pick(stubs), RelType::kP2P);
        }
      }
    }
    // Tier-1 <-> large transit settlement-free peering (true P2P T1-TR).
    for (const Asn t1 : world_.clique) {
      for (const auto region : rir::kAllRegions) {
        for (const Asn transit : tier_list(region, Tier::kLargeTransit)) {
          if (rng_.chance(params_.t1_large_transit_peering)) {
            world_.graph.add_edge(t1, transit, RelType::kP2P);
          }
        }
        for (const Asn transit : tier_list(region, Tier::kMidTransit)) {
          if (rng_.chance(params_.t1_mid_transit_peering)) {
            world_.graph.add_edge(t1, transit, RelType::kP2P);
          }
        }
      }
    }
    // Research / anycast / CDN / cloud stubs peer directly with Tier-1s:
    // the paper's S-T1 peering population (§6).
    for (const auto region : rir::kAllRegions) {
      for (const Asn asn : stubs_[index_of(region)]) {
        const auto& attrs = world_.attrs.at(asn);
        if (attrs.hypergiant) continue;
        double p = 0.0;
        switch (attrs.stub_kind) {
          case StubKind::kResearch:
            p = 0.001;
            break;
          case StubKind::kAnycastDns:
            p = 0.005;
            break;
          case StubKind::kCdn:
          case StubKind::kCloud:
            p = 0.0015;
            break;
          default:
            break;
        }
        if (p == 0.0) continue;
        for (const Asn t1 : world_.clique) {
          if (rng_.chance(p)) world_.graph.add_edge(asn, t1, RelType::kP2P);
        }
      }
    }
  }

  void configure_partial_transit() {
    const auto& pt = params_.partial_transit;

    const auto transit_customer_edges = [&](Asn provider) {
      std::vector<EdgeId> edges;
      const auto node = world_.graph.node_of(provider);
      if (!node) return edges;
      for (const auto& neighbor : world_.graph.neighbors(*node)) {
        if (neighbor.role != Neighbor::Role::kProvider) continue;
        const Asn customer = world_.graph.asn_of(neighbor.node);
        const auto tier = world_.attrs.at(customer).tier;
        // Partial-transit arrangements are made with sizable transit
        // networks (the paper's targets are other transit providers).
        if (tier == Tier::kMidTransit || tier == Tier::kLargeTransit) {
          edges.push_back(neighbor.edge);
        }
      }
      return edges;
    };

    // The Cogent analogue: community-tagged customers-only partial transit.
    // Its community documentation is always published (Cogent's is), so the
    // §6.1 investigation has something to decode.
    world_.attrs[world_.cogent_like].documents_communities = true;
    {
      auto edges = transit_customer_edges(world_.cogent_like);
      // Top up with extra transit customers if the hierarchy didn't give the
      // designated Tier-1 enough of them.
      int needed = pt.community_tagged_customers -
                   static_cast<int>(edges.size());
      for (const auto region : rir::kAllRegions) {
        if (needed <= 0) break;
        for (const Asn candidate : tier_list(region, Tier::kMidTransit)) {
          if (needed <= 0) break;
          if (world_.graph.find_edge(world_.cogent_like, candidate)) continue;
          if (const auto id = world_.graph.add_edge(
                  world_.cogent_like, candidate, RelType::kP2C)) {
            edges.push_back(*id);
            --needed;
          }
        }
      }
      rng_.shuffle(edges);
      const auto count = std::min<std::size_t>(
          edges.size(), static_cast<std::size_t>(pt.community_tagged_customers));
      for (std::size_t i = 0; i < count; ++i) {
        auto& edge = world_.graph.mutable_edge(edges[i]);
        edge.scope = ExportScope::kCustomersOnly;
        edge.scope_via_community = true;
      }
    }
    // One link whose published documentation is simply wrong: a real peer
    // of the Cogent analogue recorded as a customer (the paper's single
    // "inaccurate validation data" case).
    for (const auto region : rir::kAllRegions) {
      bool planted = false;
      for (const Asn candidate : tier_list(region, Tier::kMidTransit)) {
        if (world_.graph.find_edge(world_.cogent_like, candidate)) continue;
        Edge proto;
        proto.rel = RelType::kP2P;
        proto.misdocumented = true;
        if (world_.graph.add_edge(world_.cogent_like, candidate, proto)) {
          planted = true;
          break;
        }
      }
      if (planted) break;
    }

    // Silent partial transit at a few other clique members.
    int providers_done = 0;
    for (const Asn t1 : world_.clique) {
      if (t1 == world_.cogent_like) continue;
      if (providers_done >= pt.silent_providers) break;
      auto edges = transit_customer_edges(t1);
      if (edges.empty()) continue;
      rng_.shuffle(edges);
      const auto count = std::min<std::size_t>(
          edges.size(), static_cast<std::size_t>(pt.silent_customers_each));
      for (std::size_t i = 0; i < count; ++i) {
        auto& edge = world_.graph.mutable_edge(edges[i]);
        edge.scope = ExportScope::kCustomersOnly;
        edge.scope_via_community = false;
      }
      ++providers_done;
    }
  }

  void mark_hybrid_links() {
    for (EdgeId id = 0; id < world_.graph.edge_count(); ++id) {
      auto& edge = world_.graph.mutable_edge(id);
      if (edge.scope != ExportScope::kFull) continue;  // keep §6.1 links clean
      const auto& attrs_u = world_.attrs.at(world_.graph.asn_of(edge.u));
      const auto& attrs_v = world_.attrs.at(world_.graph.asn_of(edge.v));
      if (!attrs_u.is_transit() || !attrs_v.is_transit()) continue;
      // Clique-incident links stay simple: a hybrid edge at a Tier-1 lets
      // descents cross the clique member for peer-mode origins, fabricating
      // the very C|T1|X triplets whose absence §6.1 depends on (and a
      // hybrid mesh would poison clique inference for every algorithm).
      if (attrs_u.is_tier1() || attrs_v.is_tier1()) continue;
      if (!rng_.chance(params_.hybrid_fraction)) continue;
      edge.hybrid_rel =
          edge.rel == RelType::kP2P ? RelType::kP2C : RelType::kP2P;
    }
  }

  void build_sibling_orgs() {
    // Group a slice of ASes into multi-AS organizations. Clique members
    // stay single-ASN: a Tier-1 sibling would re-export partial-transit
    // routes around the §6.1 export scopes and muddy the case study.
    std::vector<Asn> all;
    for (const auto& members : region_ases_) {
      for (const Asn asn : members) {
        if (world_.attrs.at(asn).tier != Tier::kClique) all.push_back(asn);
      }
    }
    std::sort(all.begin(), all.end());
    rng_.shuffle(all);

    const auto grouped = static_cast<std::size_t>(
        params_.sibling_org_fraction * static_cast<double>(all.size()));
    std::size_t cursor = 0;
    int org_seq = 0;
    const auto next_org_id = [&org_seq] {
      return "ORG-M" + std::to_string(++org_seq);
    };

    while (cursor + 1 < grouped) {
      const std::size_t size =
          std::min<std::size_t>(2 + rng_.below(3), grouped - cursor);
      if (size < 2) break;
      const std::string org_id = next_org_id();
      org::Organization org;
      org.org_id = org_id;
      org.changed = "20180301";
      org.name = "MultiAS Holdings " + std::to_string(org_seq);
      org.country = world_.attrs.at(all[cursor]).country;
      org.source = "SYNTH";
      world_.as2org.organizations.push_back(org);
      std::vector<Asn> members(all.begin() + static_cast<std::ptrdiff_t>(cursor),
                               all.begin() +
                                   static_cast<std::ptrdiff_t>(cursor + size));
      cursor += size;
      for (const Asn member : members) {
        world_.as2org.ases.push_back({member, "20180301",
                                      "AS" + std::to_string(member.value()),
                                      org_id, "", "SYNTH"});
      }
      // Sibling links between organization members.
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          if (rng_.chance(0.8)) {
            world_.graph.add_edge(members[i], members[j], RelType::kS2S);
          }
        }
      }
    }
    // Single-AS organizations for ~92 % of the remaining ASes (as2org does
    // not cover everything in reality either).
    for (std::size_t i = cursor; i < all.size(); ++i) {
      if (!rng_.chance(0.92)) continue;
      const Asn asn = all[i];
      const std::string org_id = "ORG-S" + std::to_string(asn.value());
      world_.as2org.organizations.push_back(
          {org_id, "20180301", "AS" + std::to_string(asn.value()) + " Org",
           world_.attrs.at(asn).country, "SYNTH"});
      world_.as2org.ases.push_back({asn, "20180301",
                                    "AS" + std::to_string(asn.value()), org_id,
                                    "", "SYNTH"});
    }
  }

  void allocate_prefixes() {
    // Sequential /20 carving per region from its first-octet pool; each AS
    // originates a heavy-tailed number of /24-/20 prefixes.
    std::array<std::uint32_t, 5> cursor{};  // /20 index within region space
    for (const auto region : rir::kAllRegions) {
      const auto& octets = octets_of(region);
      for (const Asn asn : region_ases_[index_of(region)]) {
        const auto& attrs = world_.attrs.at(asn);
        unsigned count = 1 + rng_.geometric(0.35, 6);
        if (attrs.tier != Tier::kStub) count += 1 + rng_.geometric(0.5, 8);
        if (attrs.hypergiant) count += 6;
        auto& list = world_.prefixes[asn];
        for (unsigned i = 0; i < count; ++i) {
          const std::uint32_t slot = cursor[index_of(region)]++;
          // 12 bits of /20s per /8: 2^12 slots per first octet.
          const std::uint8_t octet =
              octets[(slot >> 12) % octets.size()];
          const std::uint32_t base = (std::uint32_t{octet} << 24) |
                                     ((slot & 0xFFFu) << 12);
          list.emplace_back(net::Ipv4Addr{base}, 20u);
        }
      }
    }
  }

  void synthesize_delegations() {
    for (const auto region : rir::kAllRegions) {
      rir::DelegationFile file;
      file.registry = region;
      file.serial = "20180405";
      file.start_date = "19930101";
      file.end_date = "20180405";
      for (const Asn asn : region_ases_[index_of(region)]) {
        rir::DelegationRecord record;
        record.registry = region;
        record.country_code = world_.attrs.at(asn).country;
        record.type = rir::ResourceType::kAsn;
        record.start = std::to_string(asn.value());
        record.count = 1;
        record.date = random_date();
        record.status = rng_.chance(0.7) ? rir::AllocationStatus::kAllocated
                                         : rir::AllocationStatus::kAssigned;
        record.opaque_id = "opaque-" + std::to_string(asn.value());
        file.records.push_back(std::move(record));
      }
      // IPv4 records for the originated space.
      for (const Asn asn : region_ases_[index_of(region)]) {
        const auto it = world_.prefixes.find(asn);
        if (it == world_.prefixes.end()) continue;
        for (const auto& prefix : it->second) {
          rir::DelegationRecord record;
          record.registry = region;
          record.country_code = world_.attrs.at(asn).country;
          record.type = rir::ResourceType::kIpv4;
          record.start = net::to_string(prefix.network());
          record.count = prefix.address_count();
          record.date = random_date();
          record.status = rir::AllocationStatus::kAllocated;
          file.records.push_back(std::move(record));
        }
      }
      world_.delegations.push_back(std::move(file));
    }
  }

  std::string random_date() {
    const int year = 1995 + static_cast<int>(rng_.below(24));
    const int month = 1 + static_cast<int>(rng_.below(12));
    const int day = 1 + static_cast<int>(rng_.below(28));
    char buffer[9];
    std::snprintf(buffer, sizeof buffer, "%04d%02d%02d", year, month, day);
    return buffer;
  }

  std::vector<Asn>& tier_list(Region region, Tier tier) {
    auto& lists = tiers_[index_of(region)];
    switch (tier) {
      case Tier::kLargeTransit:
        return lists[0];
      case Tier::kMidTransit:
        return lists[1];
      case Tier::kSmallTransit:
        return lists[2];
      default:
        return lists[3];  // unused bucket
    }
  }

  const TopologyParams& params_;
  Rng rng_;
  World world_;
  std::array<std::vector<Asn>, 5> region_ases_;
  std::array<std::array<std::vector<Asn>, 4>, 5> tiers_;
  std::array<std::vector<Asn>, 5> stubs_;
  std::unordered_map<Asn, int> customer_count_;
};

}  // namespace

std::array<RegionProfile, 5> TopologyParams::default_region_profiles() {
  std::array<RegionProfile, 5> profiles;
  // AFRINIC
  profiles[0] = {.as_weight = 0.03,
                 .transit_fraction = 0.15,
                 .ixp_count = 1,
                 .ixp_peering_base = 0.11,
                 .t1_provider_prob = 0.04,
                 .cross_region_provider_prob = 0.12,
                 .doc_communities_transit = 0.08,
                 .doc_communities_stub = 0.01,
                 .maintains_rpsl = 0.15,
                 .attends_meetings = 0.05,
                 .prepend_propensity = 0.12,
                 .strips_communities = 0.55,
                 .vp_weight = 0.02};
  // APNIC
  profiles[1] = {.as_weight = 0.13,
                 .transit_fraction = 0.16,
                 .ixp_count = 3,
                 .ixp_peering_base = 0.14,
                 .t1_provider_prob = 0.06,
                 .cross_region_provider_prob = 0.08,
                 .doc_communities_transit = 0.3,
                 .doc_communities_stub = 0.03,
                 .maintains_rpsl = 0.25,
                 .attends_meetings = 0.08,
                 .prepend_propensity = 0.08,
                 .strips_communities = 0.45,
                 .vp_weight = 0.08};
  // ARIN
  profiles[2] = {.as_weight = 0.18,
                 .transit_fraction = 0.18,
                 .ixp_count = 4,
                 .ixp_peering_base = 0.17,
                 .t1_provider_prob = 0.24,
                 .cross_region_provider_prob = 0.05,
                 .doc_communities_transit = 0.75,
                 .doc_communities_stub = 0.08,
                 .maintains_rpsl = 0.3,
                 .attends_meetings = 0.15,
                 .prepend_propensity = 0.04,
                 .strips_communities = 0.35,
                 .vp_weight = 0.3};
  // LACNIC
  profiles[3] = {.as_weight = 0.16,
                 .transit_fraction = 0.15,
                 .ixp_count = 3,
                 .ixp_peering_base = 0.22,
                 .t1_provider_prob = 0.04,
                 .cross_region_provider_prob = 0.1,
                 .doc_communities_transit = 0.005,
                 .doc_communities_stub = 0.001,
                 .maintains_rpsl = 0.1,
                 .attends_meetings = 0.04,
                 .prepend_propensity = 0.15,
                 .strips_communities = 0.5,
                 .vp_weight = 0.02};
  // RIPE
  profiles[4] = {.as_weight = 0.37,
                 .transit_fraction = 0.17,
                 .ixp_count = 6,
                 .ixp_peering_base = 0.20,
                 .t1_provider_prob = 0.17,
                 .cross_region_provider_prob = 0.06,
                 .doc_communities_transit = 0.5,
                 .doc_communities_stub = 0.06,
                 .maintains_rpsl = 0.45,
                 .attends_meetings = 0.18,
                 .prepend_propensity = 0.05,
                 .strips_communities = 0.35,
                 .vp_weight = 0.55};
  return profiles;
}

World generate(const TopologyParams& params) {
  return Builder{params}.build();
}

}  // namespace asrel::topo
