// Customer-cone computation over the ground-truth graph.
//
// The paper uses CAIDA's customer-cone data to split ASes into Stub vs
// Transit (§5); here the cone is computed directly from the graph's P2C
// edges. Cycles (which can occur in inferred graphs fed back through this
// API) are tolerated: the cone is the set of nodes reachable through
// provider->customer edges.
#pragma once

#include <cstdint>
#include <vector>

#include "asn/asn.hpp"
#include "topology/graph.hpp"

namespace asrel::topo {

/// Customer cone of one AS: every AS reachable by repeatedly following
/// provider->customer edges, excluding the AS itself. Sorted by ASN.
[[nodiscard]] std::vector<asn::Asn> customer_cone(const AsGraph& graph,
                                                  asn::Asn asn);

/// Cone sizes (|customer_cone|) for all nodes, indexed by NodeId.
/// Computed in one pass (reverse topological order over the P2C DAG with
/// cycle tolerance via iterative set union).
[[nodiscard]] std::vector<std::uint32_t> customer_cone_sizes(
    const AsGraph& graph);

/// True if the AS has at least one customer (the paper's Transit test).
[[nodiscard]] bool is_transit_as(const AsGraph& graph, asn::Asn asn);

}  // namespace asrel::topo
