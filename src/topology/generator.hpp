// Synthetic Internet generator.
//
// Produces a region-aware, hierarchical AS topology with known ground truth:
// a provider-free clique, per-region transit hierarchies, stubs with diverse
// business models, hypergiants, IXP-mediated peering, partial-transit
// customers of Tier-1s (the §6.1 "Cogent" mechanism), hybrid links, and
// sibling organizations. It also synthesizes the companion data sets the
// paper consumes: RIR delegated-extended files and a CAIDA-style as2org file.
//
// The behavioural knobs (who documents BGP communities, who maintains RPSL,
// who attends operator meetings, who strips communities) are set here per
// (region, tier); the validation-compilation pipeline later turns them into
// the coverage bias the paper measures. Nothing downstream ever reads the
// ground truth to decide coverage.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "asn/asn.hpp"
#include "netbase/ip.hpp"
#include "org/as2org.hpp"
#include "rir/delegation.hpp"
#include "rir/region.hpp"
#include "topology/attributes.hpp"
#include "topology/graph.hpp"

namespace asrel::topo {

/// Per-region tuning. Defaults are chosen so the generated world's link-class
/// shares approximate Fig. 1/2 of the paper; see DESIGN.md §5.
struct RegionProfile {
  double as_weight = 0.2;        ///< share of all ASes in this region
  double transit_fraction = 0.15;///< fraction of the region's ASes w/ customers
  int ixp_count = 2;             ///< IXPs hosted in the region
  double ixp_peering_base = 0.08;///< base pairwise peering probability
  double t1_provider_prob = 0.1; ///< stub picks a Tier-1 as direct provider
  double cross_region_provider_prob = 0.08;

  // Operator behaviour (drives validation bias):
  double doc_communities_transit = 0.4;  ///< transit AS documents communities
  double doc_communities_stub = 0.05;
  double maintains_rpsl = 0.3;
  double attends_meetings = 0.1;
  double prepend_propensity = 0.05;
  double strips_communities = 0.3;

  /// Weight for placing route-collector vantage points (RIS/Route Views are
  /// strongly euro/us-centric).
  double vp_weight = 0.1;
};

struct PartialTransitProfile {
  /// Transit customers of the designated "Cogent-like" clique member whose
  /// routes carry a no-export-to-peers action community (§6.1).
  int community_tagged_customers = 45;
  /// Additional clique members with silently configured customers-only
  /// partial transit (no community visible).
  int silent_providers = 3;
  int silent_customers_each = 12;
};

/// Tier multipliers on a region's `doc_communities_transit` probability —
/// big carriers publish community dictionaries, small ISPs rarely do. This
/// is what concentrates validation coverage on clique-adjacent links
/// (Fig. 2's S-T1/T1-TR coverage spike vs the S-TR/TR° desert).
struct DocTierFactors {
  double clique_prob = 0.8;  ///< absolute probability for clique members
  double large = 1.0;
  double mid = 0.45;
  double small = 0.1;
};

struct TopologyParams {
  std::uint64_t seed = 42;
  int as_count = 12000;

  int clique_size = 16;
  /// Clique members per region (must sum to clique_size).
  std::array<int, 5> clique_by_region = {0, 2, 8, 0, 6};  // AF,AP,AR,L,R order

  int hypergiant_count = 15;
  std::array<int, 5> hypergiants_by_region = {0, 2, 9, 0, 4};

  /// Tier split among transit ASes: large/mid/small.
  double transit_large_fraction = 0.07;
  double transit_mid_fraction = 0.24;

  /// Multihoming: provider count = 1 + geometric(p, cap).
  double stub_extra_provider_p = 0.55;
  unsigned stub_provider_cap = 4;
  double transit_extra_provider_p = 0.5;
  unsigned transit_provider_cap = 5;

  /// Tier-1 <-> large-transit settlement-free peering probability.
  double t1_large_transit_peering = 0.4;
  /// Tier-1 <-> mid-transit peering probability.
  double t1_mid_transit_peering = 0.02;

  /// Fraction of ASes placed in multi-AS organizations (siblings).
  double sibling_org_fraction = 0.05;
  /// Fraction of P2P transit links that are hybrid (P2C at another PoP)
  /// and of P2C links that are hybrid (P2P at another PoP).
  double hybrid_fraction = 0.02;

  DocTierFactors doc_factors;

  /// Fraction of ASes whose ASN comes from a block IANA assigned to a
  /// different region (inter-RIR transfers; delegation files correct these).
  double transferred_fraction = 0.01;

  PartialTransitProfile partial_transit;

  std::array<RegionProfile, 5> regions = default_region_profiles();

  [[nodiscard]] static std::array<RegionProfile, 5> default_region_profiles();
  [[nodiscard]] const RegionProfile& profile(rir::Region region) const {
    return regions[static_cast<std::size_t>(region)];
  }
};

/// An Internet Exchange Point: a co-location of member ASes in one region.
struct Ixp {
  int id = 0;
  rir::Region region = rir::Region::kUnknown;
  std::vector<asn::Asn> members;
};

/// The generated world: ground truth plus companion data sets.
struct World {
  TopologyParams params;  ///< the parameters that generated this world
  AsGraph graph;
  AsAttributeMap attrs;
  std::vector<asn::Asn> clique;
  std::vector<asn::Asn> hypergiants;
  std::vector<Ixp> ixps;
  /// The clique member whose customers tag the no-export community (§6.1).
  asn::Asn cogent_like;
  /// Synthesized companion data sets.
  std::vector<rir::DelegationFile> delegations;  // one per RIR
  org::As2OrgFile as2org;
  /// Prefixes originated per AS (count follows a heavy-tailed law).
  std::unordered_map<asn::Asn, std::vector<net::Prefix4>> prefixes;
};

/// Deterministic: same params -> bit-identical world.
[[nodiscard]] World generate(const TopologyParams& params);

}  // namespace asrel::topo
