// AS business-relationship types and export-scope annotations.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace asrel::topo {

/// The three canonical relationship types (§1 of the paper).
enum class RelType : std::uint8_t {
  kP2C,  ///< provider-to-customer (directed: provider -> customer)
  kP2P,  ///< settlement-free peering (undirected)
  kS2S,  ///< sibling: same organization (undirected)
};

[[nodiscard]] constexpr std::string_view to_string(RelType rel) {
  switch (rel) {
    case RelType::kP2C:
      return "p2c";
    case RelType::kP2P:
      return "p2p";
    case RelType::kS2S:
      return "s2s";
  }
  return "?";
}

/// CAIDA serial-1 as-rel encoding: -1 = p2c, 0 = p2p, 1 = s2s (extension).
[[nodiscard]] constexpr int to_caida_code(RelType rel) {
  switch (rel) {
    case RelType::kP2C:
      return -1;
    case RelType::kP2P:
      return 0;
    case RelType::kS2S:
      return 1;
  }
  return 0;
}

[[nodiscard]] constexpr std::optional<RelType> from_caida_code(int code) {
  switch (code) {
    case -1:
      return RelType::kP2C;
    case 0:
      return RelType::kP2P;
    case 1:
      return RelType::kS2S;
    default:
      return std::nullopt;
  }
}

/// How far a provider redistributes the routes it learns from a customer.
/// kFull is a normal P2C; the other two are the paper's partial-transit
/// variants (§3.1, §6.1): kNoProviders exports the customer's routes to
/// customers and peers only; kCustomersOnly (the Cogent 174:990 analogue)
/// exports them to customers only, so no `clique|T1|X` triplet is ever
/// observable.
enum class ExportScope : std::uint8_t {
  kFull,
  kNoProviders,
  kCustomersOnly,
};

[[nodiscard]] constexpr std::string_view to_string(ExportScope scope) {
  switch (scope) {
    case ExportScope::kFull:
      return "full";
    case ExportScope::kNoProviders:
      return "no-providers";
    case ExportScope::kCustomersOnly:
      return "customers-only";
  }
  return "?";
}

}  // namespace asrel::topo
