// Structured event log with per-thread ring buffers and bounded rates.
//
// The event log is the narrative companion to the metrics registry and
// the trace rings: metrics say *how much*, traces say *how long*, the
// log says *what happened* — an engine swap, a checkpoint rejected by
// the recovery ladder, a shed connection, a watchdog heal. Events are
// structured (component, event name, key/value fields, both monotonic
// and wall timestamps, an optional request id) and rendered as one JSON
// object per line, so the same bytes serve `GET /logz`, the stderr
// sink, and the crash flight recorder's black box.
//
// Design rules, mirrored from the tracer:
//   - emit() touches only the calling thread's ring (per-buffer mutex,
//     never contended across recording threads); a global atomic gives
//     events a total order for merge at read time.
//   - Rings are bounded; once full the oldest events are overwritten and
//     a per-buffer dropped counter advances. A week-long daemon logs in
//     constant memory.
//   - Every call site carries a static LogSite with a per-second rate
//     cap: a hot failure path (shed storm, malformed-request flood)
//     cannot flood the ring or stderr — excess events are counted as
//     suppressed, not stored.
//   - Recording never writes anywhere a report could read; pipeline
//     output stays byte-identical with logging enabled (tests pin the
//     serve-path equivalent).
//
// This header is part of asrel_obs and must not depend on src/serve —
// JSON escaping is local (append_json_escaped).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace asrel::obs {

enum class LogLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

[[nodiscard]] const char* log_level_name(LogLevel level);

/// Minimal JSON string escaping (quotes, backslash, control chars). Local
/// to asrel_obs so the log layer has no dependency on serve/json.hpp.
void append_json_escaped(std::string& out, std::string_view text);

/// Canonical request-id wire format: 16 lowercase hex digits. Used for
/// the X-Request-Id echo, /logz, /slowz, /tracez and the loadgen
/// verifier, so one grep finds a request everywhere.
[[nodiscard]] std::string format_request_id(std::uint64_t id);

/// Parses 1..16 hex digits (either case). Returns false on anything else
/// — a client-supplied X-Request-Id that fails this is ignored and a
/// server-generated id is used instead.
[[nodiscard]] bool parse_request_id(std::string_view text,
                                    std::uint64_t* out);

/// One typed key/value pair attached to a log event. Construction picks
/// the representation from the value's type; rendering happens once, at
/// emit time, into the event's fields fragment.
struct LogField {
  enum class Kind : std::uint8_t { kU64, kI64, kF64, kBool, kStr };

  std::string_view key;
  Kind kind = Kind::kU64;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double d = 0;
  bool b = false;
  std::string_view s;

  LogField(std::string_view k, std::uint64_t v)
      : key(k), kind(Kind::kU64), u(v) {}
  LogField(std::string_view k, unsigned v)
      : key(k), kind(Kind::kU64), u(v) {}
  LogField(std::string_view k, std::int64_t v)
      : key(k), kind(Kind::kI64), i(v) {}
  LogField(std::string_view k, int v) : key(k), kind(Kind::kI64), i(v) {}
  LogField(std::string_view k, double v) : key(k), kind(Kind::kF64), d(v) {}
  LogField(std::string_view k, bool v) : key(k), kind(Kind::kBool), b(v) {}
  LogField(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kStr), s(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), kind(Kind::kStr), s(v) {}
};

/// Static per-call-site state: identity (component + event name) and the
/// rate limiter. Declare one `static LogSite` at each emission point; the
/// limiter is windowed per monotonic second and counts what it refuses.
struct LogSite {
  const char* component;
  const char* event;
  std::uint32_t max_per_sec;  ///< 0 = unlimited

  std::atomic<std::uint64_t> window_s{0};
  std::atomic<std::uint32_t> in_window{0};
  std::atomic<std::uint64_t> suppressed{0};
};

struct LogEvent {
  std::uint64_t seq = 0;          ///< global emission order
  std::uint64_t wall_unix_ms = 0; ///< wall clock (for humans, cross-host)
  std::uint64_t mono_us = 0;      ///< tracer-epoch monotonic (for ordering)
  std::uint64_t request_id = 0;   ///< 0 = not request-scoped
  const char* component = "";
  const char* event = "";
  LogLevel level = LogLevel::kInfo;
  std::uint32_t tid = 0;
  std::string fields_json;        ///< pre-rendered `"k":v,...` fragment
};

class EventLog {
 public:
  static EventLog& instance();

  /// Ring capture on/off. Enabled by default — the bench proves the
  /// steady-state cost is inside the <2% observability budget.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Mirrors events at `level` and above to stderr as JSON lines.
  /// Pass -1 to turn the sink off (the default: tests and benches stay
  /// quiet; the daemons opt in at startup).
  void set_stderr_level(int level);
  [[nodiscard]] int stderr_level() const {
    return stderr_level_.load(std::memory_order_relaxed);
  }

  /// Records one event (rate limit permitting). Fields are rendered to
  /// the event's JSON fragment here, once, on the emitting thread.
  void emit(LogSite& site, LogLevel level, std::uint64_t request_id,
            std::initializer_list<LogField> fields);

  /// The most recent `n` events in global emission order (by seq),
  /// oldest first. This is what /logz and the flight recorder serve.
  [[nodiscard]] std::vector<LogEvent> recent(std::size_t n) const;

  /// Events overwritten after their ring filled, across all threads.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Events refused by per-site rate caps, across all sites.
  [[nodiscard]] std::uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

  /// Total events ever stored (post rate limit), across all threads.
  [[nodiscard]] std::uint64_t emitted() const;

  /// Drops every retained event. Ring registrations survive (same
  /// contract as Tracer::clear()).
  void clear();

  /// Per-thread ring capacity; applies to threads registering after the
  /// call. Typically set once at startup.
  void set_capacity_per_thread(std::size_t capacity);

  /// Renders one event as a JSON object (no trailing newline). Key order
  /// is fixed — tests pin it as the /logz schema.
  static void render_event(const LogEvent& event, std::string& out);

  /// JSON-lines rendering of `events`, one object per line.
  [[nodiscard]] static std::string render_jsonl(
      const std::vector<LogEvent>& events);

 private:
  struct ThreadBuffer;
  EventLog() = default;
  ThreadBuffer& buffer_for_this_thread();

  std::atomic<bool> enabled_{true};
  std::atomic<int> stderr_level_{-1};
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> suppressed_{0};

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::size_t capacity_ = 512;
};

/// The one emission entry point. A disabled log costs a relaxed load.
inline void log_event(LogSite& site, LogLevel level,
                      std::uint64_t request_id,
                      std::initializer_list<LogField> fields = {}) {
  EventLog& log = EventLog::instance();
  if (!log.enabled()) return;
  log.emit(site, level, request_id, fields);
}

/// Test/bench helper: flips ring capture for one scope, restoring the
/// previous state (clearing freshly captured events on exit if asked).
class ScopedLogging {
 public:
  explicit ScopedLogging(bool enabled, bool clear_on_exit = false)
      : previous_(EventLog::instance().enabled()),
        clear_on_exit_(clear_on_exit) {
    EventLog::instance().set_enabled(enabled);
  }
  ~ScopedLogging() {
    EventLog::instance().set_enabled(previous_);
    if (clear_on_exit_) EventLog::instance().clear();
  }
  ScopedLogging(const ScopedLogging&) = delete;
  ScopedLogging& operator=(const ScopedLogging&) = delete;

 private:
  bool previous_;
  bool clear_on_exit_;
};

}  // namespace asrel::obs
