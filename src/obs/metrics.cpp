#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace asrel::obs {

namespace detail {

unsigned thread_slot() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      stripes_(new Stripe[detail::kStripes]) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (std::size_t s = 0; s < detail::kStripes; ++s) {
    stripes_[s].buckets.reset(
        new std::atomic<std::uint64_t>[bounds_.size() + 1]{});
  }
}

void Histogram::observe(double value) noexcept {
  // First bucket whose upper bound is >= value (Prometheus `le`); past the
  // last finite bound lands in the +Inf bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Stripe& stripe = stripes_[detail::thread_slot() % detail::kStripes];
  stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> via CAS: portable across libstdc++ vintages.
  double sum = stripe.sum.load(std::memory_order_relaxed);
  while (!stripe.sum.compare_exchange_weak(sum, sum + value,
                                           std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (std::size_t s = 0; s < detail::kStripes; ++s) {
    const Stripe& stripe = stripes_[s];
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      snap.counts[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += stripe.count.load(std::memory_order_relaxed);
    snap.sum += stripe.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

double histogram_quantile(const Histogram::Snapshot& snapshot, double q) {
  if (snapshot.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank, 1-based: rank r means "the r-th smallest observation".
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(snapshot.count))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < snapshot.counts.size(); ++b) {
    const std::uint64_t in_bucket = snapshot.counts[b];
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    const double lower = b == 0 ? 0.0 : snapshot.bounds[b - 1];
    if (b >= snapshot.bounds.size()) {
      // +Inf bucket: the best defensible point estimate is its lower edge.
      return lower;
    }
    const double upper = snapshot.bounds[b];
    const double position = in_bucket == 0
                                ? 1.0
                                : static_cast<double>(rank - cumulative) /
                                      static_cast<double>(in_bucket);
    return lower + (upper - lower) * position;
  }
  return snapshot.bounds.empty() ? 0.0 : snapshot.bounds.back();
}

const std::vector<double>& latency_buckets_us() {
  static const std::vector<double> buckets = [] {
    std::vector<double> b;
    for (double edge = 50.0; edge <= 850000.0; edge *= 2.0) {
      b.push_back(edge);  // 50 us .. 819.2 ms
    }
    return b;
  }();
  return buckets;
}

const std::vector<double>& stage_buckets_us() {
  static const std::vector<double> buckets = [] {
    std::vector<double> b;
    for (double edge = 100.0; edge <= 1e8; edge *= std::sqrt(10.0)) {
      b.push_back(std::round(edge));  // 100 us .. 100 s, half-decade steps
    }
    return b;
  }();
  return buckets;
}

// --------------------------------------------------------- MetricsRegistry

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  std::lock_guard<std::mutex> lock{mutex_};
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string{name}, Entry{}).first;
    it->second.help = help;
    it->second.counter = std::make_unique<Counter>();
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock{mutex_};
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string{name}, Entry{}).first;
    it->second.help = help;
    it->second.gauge = std::make_unique<Gauge>();
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      std::string_view help) {
  std::lock_guard<std::mutex> lock{mutex_};
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string{name}, Entry{}).first;
    it->second.help = help;
    it->second.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *it->second.histogram;
}

void MetricsRegistry::add_collector(Collector collector) {
  std::lock_guard<std::mutex> lock{mutex_};
  collectors_.push_back(std::move(collector));
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      MetricSnapshot snap;
      snap.name = name;
      snap.help = entry.help;
      if (entry.counter) {
        snap.type = MetricType::kCounter;
        snap.value = static_cast<double>(entry.counter->value());
      } else if (entry.gauge) {
        snap.type = MetricType::kGauge;
        snap.value = static_cast<double>(entry.gauge->value());
      } else {
        snap.type = MetricType::kHistogram;
        snap.hist = entry.histogram->snapshot();
      }
      out.push_back(std::move(snap));
    }
    collectors = collectors_;
  }
  // Collectors run outside the registry lock: they typically lock their
  // own subsystem (cache shards, engine hub) and must not nest under ours.
  for (const auto& collector : collectors) collector(out);
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

// -------------------------------------------------------------- exposition

namespace {

/// "asrel_x_total{route=\"/rel\"}" -> base "asrel_x_total".
std::string_view base_name(std::string_view series) {
  const std::size_t brace = series.find('{');
  return brace == std::string_view::npos ? series : series.substr(0, brace);
}

/// Splices an `le` label into a series name, preserving existing labels:
///   name            -> name_bucket{le="10"}
///   name{a="b"}     -> name_bucket{a="b",le="10"}
std::string bucket_series(std::string_view series, std::string_view le) {
  const std::size_t brace = series.find('{');
  std::string out;
  if (brace == std::string_view::npos) {
    out = std::string{series} + "_bucket{le=\"" + std::string{le} + "\"}";
  } else {
    out = std::string{series.substr(0, brace)} + "_bucket" +
          std::string{series.substr(brace, series.size() - brace - 1)} +
          ",le=\"" + std::string{le} + "\"}";
  }
  return out;
}

/// Appends `suffix` to the base name, keeping any label block:
///   name{a="b"} + _sum -> name_sum{a="b"}
std::string suffixed_series(std::string_view series, std::string_view suffix) {
  const std::size_t brace = series.find('{');
  if (brace == std::string_view::npos) {
    return std::string{series} + std::string{suffix};
  }
  return std::string{series.substr(0, brace)} + std::string{suffix} +
         std::string{series.substr(brace)};
}

void append_number(std::string& out, double v) {
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(v));
    out += buffer;
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  out += buffer;
}

}  // namespace

std::string render_prometheus(std::vector<MetricSnapshot> snapshots) {
  std::sort(snapshots.begin(), snapshots.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  std::string out;
  out.reserve(snapshots.size() * 64);
  std::string last_family;
  for (const MetricSnapshot& snap : snapshots) {
    const std::string family{base_name(snap.name)};
    if (family != last_family) {
      last_family = family;
      if (!snap.help.empty()) {
        out += "# HELP " + family + " " + snap.help + "\n";
      }
      out += "# TYPE " + family + " ";
      switch (snap.type) {
        case MetricType::kCounter:
          out += "counter";
          break;
        case MetricType::kGauge:
          out += "gauge";
          break;
        case MetricType::kHistogram:
          out += "histogram";
          break;
      }
      out += "\n";
    }
    if (snap.type != MetricType::kHistogram) {
      out += snap.name;
      out += ' ';
      append_number(out, snap.value);
      out += '\n';
      continue;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < snap.hist.bounds.size(); ++b) {
      cumulative += snap.hist.counts[b];
      std::string le;
      append_number(le, snap.hist.bounds[b]);
      out += bucket_series(snap.name, le);
      out += ' ';
      append_number(out, static_cast<double>(cumulative));
      out += '\n';
    }
    out += bucket_series(snap.name, "+Inf");
    out += ' ';
    append_number(out, static_cast<double>(snap.hist.count));
    out += '\n';
    out += suffixed_series(snap.name, "_sum");
    out += ' ';
    append_number(out, snap.hist.sum);
    out += '\n';
    out += suffixed_series(snap.name, "_count");
    out += ' ';
    append_number(out, static_cast<double>(snap.hist.count));
    out += '\n';
  }
  return out;
}

}  // namespace asrel::obs
