#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace asrel::obs {

namespace {

constexpr int kHandledSignals[] = {SIGSEGV, SIGABRT, SIGBUS};

const char* signal_name(int signal) {
  switch (signal) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
    default:
      return "UNKNOWN";
  }
}

/// Async-signal-safe unsigned decimal formatting. Returns digits written.
std::size_t format_u64(char* out, std::uint64_t value) {
  char reversed[20];
  std::size_t n = 0;
  do {
    reversed[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  for (std::size_t i = 0; i < n; ++i) out[i] = reversed[n - 1 - i];
  return n;
}

/// Async-signal-safe append of a NUL-terminated literal.
std::size_t append_str(char* out, const char* text) {
  std::size_t n = 0;
  while (text[n] != '\0') {
    out[n] = text[n];
    ++n;
  }
  return n;
}

std::uint64_t mono_us_now() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000;
}

extern "C" void crash_signal_handler(int signal) {
  FlightRecorder::instance().dump_from_signal(signal);
  // Restore the default disposition and re-raise: exit status and core
  // dumps look exactly as they would without the recorder. signal() and
  // raise() are both on the async-signal-safe list.
  ::signal(signal, SIG_DFL);
  ::raise(signal);
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

bool FlightRecorder::arm(const Config& config, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(config.crash_dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create crash dir " + config.crash_dir + ": " +
               ec.message();
    }
    return false;
  }
  config_ = config;
  const int written =
      std::snprintf(path_, sizeof(path_), "%s/crash-%d.json",
                    config.crash_dir.c_str(), static_cast<int>(::getpid()));
  if (written < 0 || static_cast<std::size_t>(written) >= sizeof(path_)) {
    if (error != nullptr) *error = "crash dir path too long";
    return false;
  }
  refresh();
  struct sigaction action {};
  action.sa_handler = crash_signal_handler;
  sigemptyset(&action.sa_mask);
  for (const int signal : kHandledSignals) {
    ::sigaction(signal, &action, nullptr);
  }
  armed_.store(true, std::memory_order_release);
  return true;
}

void FlightRecorder::disarm_for_test() {
  armed_.store(false, std::memory_order_release);
  for (const int signal : kHandledSignals) {
    ::signal(signal, SIG_DFL);
  }
}

std::string FlightRecorder::dump_path() const {
  return std::string{path_};
}

void FlightRecorder::refresh() {
  std::string body;
  body.reserve(8192);
  body += "\"tool\":";
  append_json_escaped(body, config_.tool);
  body += ",\"build\":";
  append_json_escaped(body, config_.build_info);
  body += ",\"pid\":" + std::to_string(::getpid());
  body += ",\"refreshed_unix_ms\":" +
          std::to_string(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count()));
  body += ",\"snapshot_epoch\":" +
          std::to_string(epoch_.load(std::memory_order_relaxed));

  // Last-N log events, already in /logz's JSONL object form.
  EventLog& log = EventLog::instance();
  body += ",\"log\":{\"dropped\":" + std::to_string(log.dropped());
  body += ",\"suppressed\":" + std::to_string(log.suppressed());
  body += ",\"events\":[";
  const std::vector<LogEvent> events = log.recent(config_.log_events);
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) body.push_back(',');
    EventLog::render_event(events[i], body);
  }
  body += "]}";

  // Tracer ring summary: totals plus the most recent spans.
  Tracer& tracer = Tracer::instance();
  body += ",\"trace\":{\"dropped\":" + std::to_string(tracer.dropped());
  body += ",\"recent\":[";
  const std::vector<SpanRecord> spans = tracer.recent(config_.trace_spans);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i != 0) body.push_back(',');
    body += "{\"name\":";
    append_json_escaped(body, span.name);
    body += ",\"start_us\":" + std::to_string(span.start_us);
    body += ",\"dur_us\":" + std::to_string(span.dur_us);
    body += ",\"tid\":" + std::to_string(span.tid);
    if (span.request_id != 0) {
      body += ",\"request_id\":\"" + format_request_id(span.request_id) +
              "\"";
    }
    body.push_back('}');
  }
  body += "]}";

  // Global metrics snapshot: scalar value for counters/gauges,
  // count+sum for histograms. Names carry their inline labels and are
  // escaped like any other string.
  body += ",\"metrics\":{";
  const std::vector<MetricSnapshot> metrics =
      MetricsRegistry::global().snapshot();
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const MetricSnapshot& metric = metrics[i];
    if (i != 0) body.push_back(',');
    append_json_escaped(body, metric.name);
    body.push_back(':');
    if (metric.type == MetricType::kHistogram) {
      body += "{\"count\":" + std::to_string(metric.hist.count);
      char sum[32];
      std::snprintf(sum, sizeof(sum), "%.6g", metric.hist.sum);
      body += ",\"sum\":";
      body += sum;
      body.push_back('}');
    } else {
      char value[32];
      std::snprintf(value, sizeof(value), "%.17g", metric.value);
      body += value;
    }
  }
  body.push_back('}');

  const int inactive = active_.load(std::memory_order_relaxed) == 0 ? 1 : 0;
  buffers_[inactive] = std::move(body);
  active_.store(inactive, std::memory_order_release);
}

void FlightRecorder::dump_from_signal(int signal) noexcept {
  if (dumping_.exchange(true, std::memory_order_acq_rel)) return;
  if (path_[0] == '\0') return;
  const int fd = ::open(path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;

  // Live preamble, formatted entirely on the stack.
  char preamble[192];
  std::size_t n = 0;
  n += append_str(preamble + n, "{\"signal\":");
  n += format_u64(preamble + n, static_cast<std::uint64_t>(signal));
  n += append_str(preamble + n, ",\"signal_name\":\"");
  n += append_str(preamble + n, signal_name(signal));
  n += append_str(preamble + n, "\",\"crash_epoch\":");
  n += format_u64(preamble + n, epoch_.load(std::memory_order_relaxed));
  n += append_str(preamble + n, ",\"crash_mono_us\":");
  n += format_u64(preamble + n, mono_us_now());
  (void)!::write(fd, preamble, n);

  const int index = active_.load(std::memory_order_acquire);
  if (index >= 0 && !buffers_[index].empty()) {
    (void)!::write(fd, ",", 1);
    (void)!::write(fd, buffers_[index].data(), buffers_[index].size());
  }
  (void)!::write(fd, "}\n", 2);
  ::close(fd);
}

std::string FlightRecorder::compose_for_test(int signal) const {
  std::string out = "{\"signal\":" + std::to_string(signal);
  out += ",\"signal_name\":\"";
  out += signal_name(signal);
  out += "\",\"crash_epoch\":" +
         std::to_string(epoch_.load(std::memory_order_relaxed));
  out += ",\"crash_mono_us\":" + std::to_string(mono_us_now());
  const int index = active_.load(std::memory_order_acquire);
  if (index >= 0 && !buffers_[index].empty()) {
    out.push_back(',');
    out += buffers_[index];
  }
  out += "}\n";
  return out;
}

}  // namespace asrel::obs
