#include "obs/log.hpp"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "obs/trace.hpp"

namespace asrel::obs {

namespace {

std::uint64_t wall_unix_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void append_u64(std::string& out, std::uint64_t v) {
  char digits[24];
  const int n = std::snprintf(digits, sizeof(digits), "%" PRIu64, v);
  out.append(digits, static_cast<std::size_t>(n));
}

void append_i64(std::string& out, std::int64_t v) {
  char digits[24];
  const int n = std::snprintf(digits, sizeof(digits), "%" PRId64, v);
  out.append(digits, static_cast<std::size_t>(n));
}

void append_f64(std::string& out, double v) {
  char digits[32];
  const int n = std::snprintf(digits, sizeof(digits), "%.6g", v);
  out.append(digits, static_cast<std::size_t>(n));
}

void render_fields(std::string& out,
                   std::initializer_list<LogField> fields) {
  for (const LogField& field : fields) {
    out.push_back(',');
    append_json_escaped(out, field.key);
    out.push_back(':');
    switch (field.kind) {
      case LogField::Kind::kU64:
        append_u64(out, field.u);
        break;
      case LogField::Kind::kI64:
        append_i64(out, field.i);
        break;
      case LogField::Kind::kF64:
        append_f64(out, field.d);
        break;
      case LogField::Kind::kBool:
        out += field.b ? "true" : "false";
        break;
      case LogField::Kind::kStr:
        append_json_escaped(out, field.s);
        break;
    }
  }
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

void append_json_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string format_request_id(std::uint64_t id) {
  char digits[17];
  std::snprintf(digits, sizeof(digits), "%016" PRIx64, id);
  return std::string{digits, 16};
}

bool parse_request_id(std::string_view text, std::uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  if (out != nullptr) *out = value;
  return true;
}

struct EventLog::ThreadBuffer {
  mutable std::mutex mutex;
  std::uint32_t tid = 0;
  std::size_t capacity = 0;
  std::vector<LogEvent> ring;  ///< grows to capacity, then wraps
  std::size_t next = 0;
  std::uint64_t written = 0;
  std::uint64_t dropped = 0;
};

EventLog& EventLog::instance() {
  static EventLog log;
  return log;
}

EventLog::ThreadBuffer& EventLog::buffer_for_this_thread() {
  // Same ownership model as the tracer: the log owns every buffer and
  // never frees one, so a late emit from an exiting thread cannot dangle.
  static thread_local ThreadBuffer* buffer_of_thread = nullptr;
  if (buffer_of_thread != nullptr) return *buffer_of_thread;
  std::lock_guard<std::mutex> lock{registry_mutex_};
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<std::uint32_t>(buffers_.size());
  buffer->capacity = capacity_;
  buffer->ring.reserve(capacity_);
  buffer_of_thread = buffer.get();
  buffers_.push_back(std::move(buffer));
  return *buffer_of_thread;
}

void EventLog::set_capacity_per_thread(std::size_t capacity) {
  std::lock_guard<std::mutex> lock{registry_mutex_};
  capacity_ = capacity == 0 ? 1 : capacity;
}

void EventLog::set_stderr_level(int level) {
  stderr_level_.store(level, std::memory_order_relaxed);
}

void EventLog::emit(LogSite& site, LogLevel level,
                    std::uint64_t request_id,
                    std::initializer_list<LogField> fields) {
  const std::uint64_t mono_us = Tracer::instance().now_us();

  // Per-site rate cap: one windowed counter per monotonic second. The
  // races here (two threads rolling the window at once) cost at most a
  // few extra events — the cap bounds floods, it is not an invariant.
  if (site.max_per_sec != 0) {
    const std::uint64_t now_s = mono_us / 1000000;
    if (site.window_s.load(std::memory_order_relaxed) != now_s) {
      site.window_s.store(now_s, std::memory_order_relaxed);
      site.in_window.store(0, std::memory_order_relaxed);
    }
    if (site.in_window.fetch_add(1, std::memory_order_relaxed) >=
        site.max_per_sec) {
      site.suppressed.fetch_add(1, std::memory_order_relaxed);
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  ThreadBuffer& buffer = buffer_for_this_thread();
  std::lock_guard<std::mutex> lock{buffer.mutex};
  if (buffer.ring.size() < buffer.capacity) {
    buffer.ring.emplace_back();
  } else {
    ++buffer.dropped;
  }
  LogEvent& event = buffer.ring[buffer.next];
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  event.wall_unix_ms = wall_unix_ms();
  event.mono_us = mono_us;
  event.request_id = request_id;
  event.component = site.component;
  event.event = site.event;
  event.level = level;
  event.tid = buffer.tid;
  event.fields_json.clear();  // reuses the evicted event's capacity
  render_fields(event.fields_json, fields);
  buffer.next = (buffer.next + 1) % buffer.capacity;
  ++buffer.written;

  const int sink_level = stderr_level_.load(std::memory_order_relaxed);
  if (sink_level >= 0 && static_cast<int>(level) >= sink_level) {
    std::string line;
    line.reserve(160 + event.fields_json.size());
    render_event(event, line);
    line.push_back('\n');
    // One fwrite per line: stderr is unbuffered, so concurrent emitters
    // interleave at line granularity, not mid-line.
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

std::vector<LogEvent> EventLog::recent(std::size_t n) const {
  std::vector<LogEvent> all;
  {
    std::lock_guard<std::mutex> lock{registry_mutex_};
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buf{buffer->mutex};
      for (const LogEvent& event : buffer->ring) all.push_back(event);
    }
  }
  // The global sequence gives a total emission order across threads.
  std::sort(all.begin(), all.end(),
            [](const LogEvent& a, const LogEvent& b) { return a.seq < b.seq; });
  if (all.size() > n) all.erase(all.begin(), all.end() - n);
  return all;
}

std::uint64_t EventLog::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock{registry_mutex_};
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buf{buffer->mutex};
    total += buffer->dropped;
  }
  return total;
}

std::uint64_t EventLog::emitted() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock{registry_mutex_};
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buf{buffer->mutex};
    total += buffer->written;
  }
  return total;
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock{registry_mutex_};
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buf{buffer->mutex};
    buffer->ring.clear();
    buffer->next = 0;
    buffer->written = 0;
    buffer->dropped = 0;
  }
}

void EventLog::render_event(const LogEvent& event, std::string& out) {
  out += "{\"seq\":";
  append_u64(out, event.seq);
  out += ",\"ts_ms\":";
  append_u64(out, event.wall_unix_ms);
  out += ",\"mono_us\":";
  append_u64(out, event.mono_us);
  out += ",\"level\":\"";
  out += log_level_name(event.level);
  out += "\",\"component\":";
  append_json_escaped(out, event.component);
  out += ",\"event\":";
  append_json_escaped(out, event.event);
  out += ",\"tid\":";
  append_u64(out, event.tid);
  if (event.request_id != 0) {
    out += ",\"request_id\":\"";
    out += format_request_id(event.request_id);
    out.push_back('"');
  }
  out += event.fields_json;
  out.push_back('}');
}

std::string EventLog::render_jsonl(const std::vector<LogEvent>& events) {
  std::string out;
  out.reserve(events.size() * 192);
  for (const LogEvent& event : events) {
    render_event(event, out);
    out.push_back('\n');
  }
  return out;
}

}  // namespace asrel::obs
