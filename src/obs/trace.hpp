// Hierarchical scoped tracing with per-thread ring buffers.
//
// TraceSpan is an RAII scoped timer: construction stamps wall and
// thread-CPU clocks, destruction records a SpanRecord (name, start,
// durations, thread id, nesting depth) into the ring buffer owned by the
// recording thread. When tracing is disabled — the default — a span costs
// one relaxed atomic load and nothing else, which is what lets the
// instrumentation stay compiled into every build.
//
// The hard invariant carried by the whole observability layer: recording
// never writes anywhere an analysis report could read. Spans land in
// buffers of their own, so a pipeline run with tracing enabled produces
// byte-identical Fig. 1/2 and Table 1-3 output (tests/test_obs.cpp proves
// it by diffing).
//
// Export order is deterministic given an execution: collect() returns
// spans grouped by thread in registration order, each thread's spans in
// completion order (inner spans close before outer ones, so a serial run
// yields a fixed, testable sequence). recent(n) orders by completion time
// with (tid, seq) tie-breaks instead — that is what /tracez serves.
// Ordering state is all per-thread: the record() hot path writes no
// memory shared between recording threads, so tracing N threads costs
// the same as tracing one.
//
// Ring buffers are bounded (default 4096 spans per thread); once full, the
// oldest spans are overwritten and a dropped counter advances. Tracing a
// week-long daemon therefore costs constant memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace asrel::obs {

struct SpanRecord {
  std::string name;
  std::uint64_t start_us = 0;  ///< wall clock, relative to tracer epoch
  std::uint64_t dur_us = 0;    ///< wall duration
  std::uint64_t cpu_us = 0;    ///< thread CPU time consumed inside the span
  std::uint32_t tid = 0;       ///< thread id in registration order
  std::uint32_t depth = 0;     ///< nesting depth on its thread (0 = root)
  std::uint64_t seq = 0;       ///< completion order on its thread
  std::uint64_t request_id = 0;  ///< 0 = not request-scoped
};

class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every recorded span and resets the sequence counter. Thread
  /// registrations (and their tids) survive, so a clear between two runs
  /// on the same threads keeps tids comparable.
  void clear();

  /// Ring capacity per recording thread. Applies to threads that register
  /// after the call; typically set once at startup.
  void set_capacity_per_thread(std::size_t capacity);

  /// All retained spans, deterministically ordered: by (tid, completion).
  [[nodiscard]] std::vector<SpanRecord> collect() const;

  /// The most recent `n` spans by completion time (ties broken by
  /// (tid, seq), so the order is deterministic), oldest first.
  [[nodiscard]] std::vector<SpanRecord> recent(std::size_t n) const;

  /// Spans overwritten after their ring filled (across all threads).
  /// Counted per buffer under its own lock — the hot record() path never
  /// touches memory shared between recording threads.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Chrome trace-event JSON ("chrome://tracing" / Perfetto "load trace"),
  /// one complete ("ph":"X") event per span.
  [[nodiscard]] std::string chrome_trace_json() const;
  bool write_chrome_trace(const std::string& path,
                          std::string* error = nullptr) const;

  /// Microseconds since the tracer's epoch (process start of use).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Converts a steady_clock stamp the caller already took to tracer
  /// time, saving the hot path a second clock read.
  [[nodiscard]] std::uint64_t to_trace_us(
      std::int64_t steady_since_epoch_ns) const {
    return static_cast<std::uint64_t>((steady_since_epoch_ns - epoch_ns_) /
                                      1000);
  }

  /// Called by ~TraceSpan. Public so the server can record request spans
  /// it timed itself. The second form stamps the span with the request id
  /// it was handling, so /tracez entries join against /slowz and /logz.
  void record(std::string_view name, std::uint64_t start_us,
              std::uint64_t dur_us, std::uint64_t cpu_us,
              std::uint32_t depth);
  void record(std::string_view name, std::uint64_t start_us,
              std::uint64_t dur_us, std::uint64_t cpu_us,
              std::uint32_t depth, std::uint64_t request_id);

 private:
  struct ThreadBuffer;
  Tracer();
  ThreadBuffer& buffer_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::int64_t epoch_ns_ = 0;

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::size_t capacity_ = 4096;
};

/// RAII scoped timer. The enabled check happens once, at construction; a
/// span that began while tracing was off stays silent even if tracing
/// turns on before it closes (and vice versa), so toggling mid-request
/// never produces a torn record.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  std::uint64_t start_us_ = 0;
  std::uint64_t cpu_start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// RAII: opens a TraceSpan and also feeds the always-on stage metrics —
/// `asrel_stage_runs_total{stage=...}` and the wall-time histogram
/// `asrel_stage_duration_us{stage=...}` in MetricsRegistry::global().
/// Every §4 pipeline stage brackets itself with one of these.
class StageScope {
 public:
  explicit StageScope(const char* stage);
  ~StageScope();
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  TraceSpan span_;
  class Histogram* duration_ = nullptr;
  std::uint64_t start_us_ = 0;
};

/// Test/tool helper: flips tracing for one scope, restoring the previous
/// state (and clearing freshly recorded spans on exit when requested).
class ScopedTracing {
 public:
  explicit ScopedTracing(bool enabled, bool clear_on_exit = false)
      : previous_(Tracer::instance().enabled()),
        clear_on_exit_(clear_on_exit) {
    Tracer::instance().set_enabled(enabled);
  }
  ~ScopedTracing() {
    Tracer::instance().set_enabled(previous_);
    if (clear_on_exit_) Tracer::instance().clear();
  }
  ScopedTracing(const ScopedTracing&) = delete;
  ScopedTracing& operator=(const ScopedTracing&) = delete;

 private:
  bool previous_;
  bool clear_on_exit_;
};

}  // namespace asrel::obs
