#include "obs/trace.hpp"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <fstream>

#include "obs/metrics.hpp"

namespace asrel::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t thread_cpu_ns() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// Nesting depth of live (recording) spans on this thread.
thread_local std::uint32_t t_depth = 0;

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';  // span names are ours; control chars never expected
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

struct Tracer::ThreadBuffer {
  mutable std::mutex mutex;
  std::uint32_t tid = 0;
  std::size_t capacity = 0;      ///< fixed at registration
  std::vector<SpanRecord> ring;  ///< grows to capacity, then wraps
  std::size_t next = 0;          ///< ring write cursor
  std::uint64_t written = 0;     ///< total records ever written
  std::uint64_t dropped = 0;     ///< overwritten records (ring was full)
};

Tracer::Tracer() : epoch_ns_(steady_ns()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>((steady_ns() - epoch_ns_) / 1000);
}

Tracer::ThreadBuffer& Tracer::buffer_for_this_thread() {
  // The calling thread's buffer, owned by the Tracer (never freed, so a
  // late record from an exiting thread cannot dangle).
  static thread_local ThreadBuffer* buffer_of_thread = nullptr;
  if (buffer_of_thread != nullptr) return *buffer_of_thread;
  std::lock_guard<std::mutex> lock{registry_mutex_};
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<std::uint32_t>(buffers_.size());
  buffer->capacity = capacity_;
  buffer->ring.reserve(capacity_);
  buffer_of_thread = buffer.get();
  buffers_.push_back(std::move(buffer));
  return *buffer_of_thread;
}

void Tracer::set_capacity_per_thread(std::size_t capacity) {
  std::lock_guard<std::mutex> lock{registry_mutex_};
  capacity_ = capacity == 0 ? 1 : capacity;
}

void Tracer::record(std::string_view name, std::uint64_t start_us,
                    std::uint64_t dur_us, std::uint64_t cpu_us,
                    std::uint32_t depth) {
  record(name, start_us, dur_us, cpu_us, depth, 0);
}

void Tracer::record(std::string_view name, std::uint64_t start_us,
                    std::uint64_t dur_us, std::uint64_t cpu_us,
                    std::uint32_t depth, std::uint64_t request_id) {
  ThreadBuffer& buffer = buffer_for_this_thread();
  std::lock_guard<std::mutex> lock{buffer.mutex};
  if (buffer.ring.size() < buffer.capacity) {
    buffer.ring.emplace_back();
  } else {
    ++buffer.dropped;
  }
  // Overwrite in place: assign() reuses the evicted record's string
  // capacity, so a full ring records without touching the allocator.
  SpanRecord& span = buffer.ring[buffer.next];
  span.name.assign(name.data(), name.size());
  span.start_us = start_us;
  span.dur_us = dur_us;
  span.cpu_us = cpu_us;
  span.tid = buffer.tid;
  span.depth = depth;
  span.seq = buffer.written;  // per-thread completion index
  span.request_id = request_id;
  buffer.next = (buffer.next + 1) % buffer.capacity;
  ++buffer.written;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock{registry_mutex_};
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buf{buffer->mutex};
    buffer->ring.clear();
    buffer->next = 0;
    buffer->written = 0;
    buffer->dropped = 0;
  }
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock{registry_mutex_};
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buf{buffer->mutex};
    total += buffer->dropped;
  }
  return total;
}

std::vector<SpanRecord> Tracer::collect() const {
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lock{registry_mutex_};
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buf{buffer->mutex};
    // The ring holds records in write order once unrolled from `next`.
    const std::size_t n = buffer->ring.size();
    const std::size_t start = buffer->written > n ? buffer->next % n : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(buffer->ring[(start + i) % n]);
    }
  }
  return out;
}

std::vector<SpanRecord> Tracer::recent(std::size_t n) const {
  std::vector<SpanRecord> all = collect();
  // Completion time, with (tid, seq) breaking sub-microsecond ties — a
  // total, deterministic order over any fixed set of records.
  std::sort(all.begin(), all.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              const std::uint64_t end_a = a.start_us + a.dur_us;
              const std::uint64_t end_b = b.start_us + b.dur_us;
              if (end_a != end_b) return end_a < end_b;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  if (all.size() > n) all.erase(all.begin(), all.end() - n);
  return all;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = collect();
  std::string out;
  out.reserve(spans.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    append_json_string(out, span.name);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(span.tid);
    out += ",\"ts\":";
    out += std::to_string(span.start_us);
    out += ",\"dur\":";
    out += std::to_string(span.dur_us);
    out += ",\"args\":{\"cpu_us\":";
    out += std::to_string(span.cpu_us);
    out += ",\"depth\":";
    out += std::to_string(span.depth);
    out += "}}";
  }
  out += "]}";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path,
                                std::string* error) const {
  std::ofstream out{path, std::ios::binary};
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out << chrome_trace_json() << '\n';
  if (!out) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------- TraceSpan

TraceSpan::TraceSpan(std::string_view name) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  active_ = true;
  name_ = std::string{name};
  depth_ = t_depth++;
  start_us_ = tracer.now_us();
  cpu_start_ns_ = thread_cpu_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  --t_depth;
  Tracer& tracer = Tracer::instance();
  const std::uint64_t end_us = tracer.now_us();
  const std::uint64_t cpu_end_ns = thread_cpu_ns();
  tracer.record(name_, start_us_, end_us - start_us_,
                (cpu_end_ns - cpu_start_ns_) / 1000, depth_);
}

// ---------------------------------------------------------------- StageScope

StageScope::StageScope(const char* stage) : span_(stage) {
  MetricsRegistry& registry = MetricsRegistry::global();
  const std::string label = std::string{"{stage=\""} + stage + "\"}";
  registry
      .counter("asrel_stage_runs_total" + label,
               "Completed executions per pipeline stage")
      .inc();
  duration_ = &registry.histogram(
      "asrel_stage_duration_us" + label, stage_buckets_us(),
      "Wall time per pipeline stage execution (microseconds)");
  start_us_ = Tracer::instance().now_us();
}

StageScope::~StageScope() {
  duration_->observe(
      static_cast<double>(Tracer::instance().now_us() - start_us_));
}

}  // namespace asrel::obs
