// Crash flight recorder: a black box the process can dump from a fatal
// signal handler.
//
// The problem with crash diagnostics is that almost nothing is legal in
// a signal handler — no allocation, no locks, no formatting. The
// recorder splits the work accordingly:
//
//   - refresh(), called from a normal thread on a cadence (the daemons'
//     main loops), serializes the full black box — build info, snapshot
//     epoch, the last N log events, a tracer ring summary, a metrics
//     snapshot — into one of two pre-allocated string buffers, then
//     flips an atomic index to publish it.
//   - The SIGSEGV/SIGABRT/SIGBUS handler is write(2)-only: it opens
//     `<crash_dir>/crash-<pid>.json` (path pre-rendered at arm time into
//     a fixed buffer), writes a small live preamble (signal number/name,
//     the epoch atomic, a monotonic stamp — integers formatted on the
//     stack), appends the published buffer verbatim, closes, restores
//     SIG_DFL and re-raises so exit status and core dumps are preserved.
//
// The dump is strictly valid JSON (CI parses it with a stock JSON
// parser). The published buffer can be up to one refresh interval stale;
// the preamble fields are live. A crash racing refresh() reads the
// buffer published *before* that refresh began — never a torn one being
// written — except in the pathological case of two refresh intervals
// elapsing mid-handler, which a crashing process does not survive long
// enough to hit.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace asrel::obs {

class FlightRecorder {
 public:
  struct Config {
    std::string crash_dir;   ///< created if missing
    std::string tool;        ///< e.g. "asrel_serve"
    std::string build_info;  ///< free-form version/compiler string
    std::size_t log_events = 32;   ///< last-N log events in the box
    std::size_t trace_spans = 16;  ///< most recent spans summarized
  };

  static FlightRecorder& instance();

  /// Creates the crash dir, pre-renders the dump path, runs the first
  /// refresh and installs the SIGSEGV/SIGABRT/SIGBUS handlers. Returns
  /// false (with `*error` set) if the directory cannot be created.
  bool arm(const Config& config, std::string* error);

  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_acquire);
  }

  /// The epoch stamped live into the crash preamble. Async-signal-safe
  /// to read; call whenever the served epoch advances.
  void set_epoch(std::uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_relaxed);
  }

  /// Re-serializes the black box and publishes it. NOT async-signal-safe
  /// — call from a normal thread on a cadence (every main-loop lap is
  /// fine; the cost is bounded by the log/trace/metric snapshot sizes).
  void refresh();

  /// Path the handler will write (empty until armed).
  [[nodiscard]] std::string dump_path() const;

  /// Composes exactly the bytes the signal handler would write for
  /// `signal`, without any signal machinery — lets tests validate the
  /// JSON end-to-end in-process.
  [[nodiscard]] std::string compose_for_test(int signal) const;

  /// Restores default dispositions for the handled signals. Test-only —
  /// a forked gtest child arms, crashes, and the parent must not stay
  /// armed across unrelated tests.
  void disarm_for_test();

  /// Called by the installed signal handler. Public only because the
  /// handler is a free function; not for direct use.
  void dump_from_signal(int signal) noexcept;

 private:
  FlightRecorder() = default;

  Config config_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> dumping_{false};

  // Double-buffered published body: refresh() writes the inactive
  // buffer, then flips `active_`. -1 until the first refresh lands.
  std::string buffers_[2];
  std::atomic<int> active_{-1};

  char path_[512] = {0};  ///< pre-rendered at arm time; read by handler
};

}  // namespace asrel::obs
