// Fixed-size capture of the K slowest requests seen by one route.
//
// The p99 histogram on /metricsz tells you a route got slow; this ring
// tells you *which requests* — id, latency, the snapshot epoch that
// answered, bytes moved, and how many flush stalls the epoll path ate.
// One ring per route (routes are a closed allowlist, so cardinality is
// bounded), served as JSON by `GET /slowz`.
//
// offer() keeps a relaxed floor of the current K-th latency so the
// steady-state fast path — a request faster than everything retained —
// is a single atomic load. Only candidates that might displace an entry
// take the mutex.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace asrel::obs {

struct SlowEntry {
  std::uint64_t request_id = 0;
  std::uint64_t latency_us = 0;
  std::uint64_t epoch = 0;         ///< snapshot epoch that served it
  std::uint64_t response_bytes = 0;
  std::uint64_t wall_unix_ms = 0;  ///< completion wall time
  std::uint32_t flush_stalls = 0;  ///< EAGAIN write stalls (epoll path)
};

class SlowRing {
 public:
  explicit SlowRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  SlowRing(const SlowRing&) = delete;
  SlowRing& operator=(const SlowRing&) = delete;

  /// Considers one finished request for retention. Keeps the `capacity`
  /// slowest by latency; among equal latencies the most recent wins
  /// (the newer entry carries the fresher epoch and is the one an
  /// operator is chasing). Returns true when the entry was retained —
  /// the caller's cue to log it while the id is hot.
  bool offer(const SlowEntry& entry) {
    if (entry.latency_us < floor_us_.load(std::memory_order_relaxed)) {
      return false;  // cannot displace anything retained
    }
    std::lock_guard<std::mutex> lock{mutex_};
    if (entries_.size() < capacity_) {
      entries_.push_back(entry);
    } else {
      // Evict the fastest retained entry; ties evict the oldest so the
      // ring turns over instead of pinning the first arrivals forever.
      std::size_t victim = 0;
      for (std::size_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].latency_us < entries_[victim].latency_us ||
            (entries_[i].latency_us == entries_[victim].latency_us &&
             entries_[i].wall_unix_ms < entries_[victim].wall_unix_ms)) {
          victim = i;
        }
      }
      if (entry.latency_us < entries_[victim].latency_us) return false;
      entries_[victim] = entry;
    }
    if (entries_.size() == capacity_) {
      std::uint64_t floor = entries_.front().latency_us;
      for (const SlowEntry& retained : entries_) {
        floor = std::min(floor, retained.latency_us);
      }
      floor_us_.store(floor, std::memory_order_relaxed);
    }
    return true;
  }

  /// Retained entries, slowest first (ties: most recent first). A stable,
  /// deterministic order for /slowz and tests.
  [[nodiscard]] std::vector<SlowEntry> snapshot() const {
    std::vector<SlowEntry> out;
    {
      std::lock_guard<std::mutex> lock{mutex_};
      out = entries_;
    }
    std::sort(out.begin(), out.end(),
              [](const SlowEntry& a, const SlowEntry& b) {
                if (a.latency_us != b.latency_us) {
                  return a.latency_us > b.latency_us;
                }
                if (a.wall_unix_ms != b.wall_unix_ms) {
                  return a.wall_unix_ms > b.wall_unix_ms;
                }
                return a.request_id < b.request_id;
              });
    return out;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SlowEntry> entries_;
  std::atomic<std::uint64_t> floor_us_{0};
};

}  // namespace asrel::obs
