// Process-wide metrics: named counters, gauges, and fixed-bucket latency
// histograms, exported in Prometheus text exposition format.
//
// Hot-path design: counters and histograms stripe their cells across
// cacheline-padded atomics indexed by a per-thread slot, so concurrent
// writers on different threads touch different cachelines and never take a
// lock — a write is one relaxed fetch_add. Reads (scrapes) sum the stripes
// into a consistent-enough snapshot; Prometheus semantics only require
// monotonicity per stripe, which relaxed increments preserve.
//
// Naming convention: `asrel_<subsystem>_<what>_<unit>` with optional
// Prometheus labels spelled inline in the metric name, e.g.
// `asrel_http_requests_total{route="/rel"}`. The registry treats the whole
// string as the identity; the renderer splits base name and labels so
// HELP/TYPE lines and histogram `le` labels come out right. Cardinality
// rule: label values must come from a small closed set decided at compile
// time (routes from an allowlist, shard indices, site names) — never from
// request input.
//
// A registry is an instance, not a singleton: the serving layer gives each
// HttpServer its own registry (test servers stay isolated) while
// process-wide subsystems (ThreadPool, pipeline stages, reloads, fault
// injection) share MetricsRegistry::global(). Handles returned by
// counter()/gauge()/histogram() are stable for the registry's lifetime, so
// callers bind them once and write lock-free afterwards.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace asrel::obs {

namespace detail {
/// Stable small slot for the calling thread, assigned round-robin on first
/// use; stripe arrays index with `slot % stripes`.
[[nodiscard]] unsigned thread_slot() noexcept;
constexpr std::size_t kStripes = 8;
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

/// Monotonic counter. add() is lock-free and wait-free on the hot path.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    stripes_[detail::thread_slot() % detail::kStripes].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& stripe : stripes_) {
      total += stripe.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<detail::PaddedU64, detail::kStripes> stripes_;
};

/// Last-write-wins signed gauge (queue depths, entry counts, epochs).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram (Prometheus semantics: buckets are cumulative
/// counts of observations <= upper bound; an implicit +Inf bucket catches
/// the rest). observe() is lock-free: one bucket fetch_add on the stripe
/// owned by the calling thread's slot, plus count/sum updates.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; +Inf is implicit.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  struct Snapshot {
    std::vector<double> bounds;          ///< finite upper bounds
    std::vector<std::uint64_t> counts;   ///< per-bucket (not cumulative);
                                         ///< size bounds.size() + 1 (+Inf)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct Stripe {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::unique_ptr<Stripe[]> stripes_;
};

/// The quantile estimator shared by the load generator and the serving
/// side, so client- and server-reported percentiles are computed by the
/// same algorithm: nearest-rank (rank = ceil(q * count), 1-based) at
/// bucket granularity, linearly interpolated inside the bucket. The
/// 1-based ceil is deliberate — the old sorted-vector form
/// `v[floor(q * (n - 1))]` under-reports high quantiles for small n (for
/// n = 10, p99 picked index 8 instead of the true maximum at index 9).
[[nodiscard]] double histogram_quantile(const Histogram::Snapshot& snapshot,
                                        double q);

/// Latency buckets (microseconds) shared by the HTTP server's per-route
/// histograms and asrel_loadgen, 50 us .. ~0.8 s, doubling.
[[nodiscard]] const std::vector<double>& latency_buckets_us();

/// Duration buckets (microseconds) for pipeline stages, 100 us .. 100 s.
[[nodiscard]] const std::vector<double>& stage_buckets_us();

enum class MetricType { kCounter, kGauge, kHistogram };

/// One metric at scrape time. `name` is the full series name including any
/// inline labels. Counters/gauges carry `value`; histograms carry `hist`.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  double value = 0.0;
  Histogram::Snapshot hist;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. The returned reference is stable for the registry's
  /// lifetime; re-registration returns the existing instrument (the help
  /// text and bounds of the first registration win).
  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::string_view help = {});

  /// Scrape-time metric sources (e.g. per-engine cache stats that live and
  /// die with a snapshot epoch). Run on every snapshot() call.
  using Collector = std::function<void(std::vector<MetricSnapshot>&)>;
  void add_collector(Collector collector);

  /// Deterministic export order: every registered instrument plus every
  /// collector's output, sorted by series name.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// The process-wide registry for subsystems that exist once per process
  /// (thread pool, pipeline stages, snapshot reloads, fault injection).
  static MetricsRegistry& global();

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::vector<Collector> collectors_;
};

/// Renders snapshots (from one or more registries, pre-merged by the
/// caller) as Prometheus text exposition format, version 0.0.4. Input
/// order is preserved except that the caller is expected to pass a
/// name-sorted list (render_prometheus sorts defensively) so series of one
/// family are contiguous under a single # HELP / # TYPE header.
[[nodiscard]] std::string render_prometheus(
    std::vector<MetricSnapshot> snapshots);

/// Content-Type for /metricsz responses.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4";

}  // namespace asrel::obs
