#include "core/parallel.hpp"

#include <atomic>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace asrel::core {

struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  std::atomic<unsigned> open_slots{0};  ///< worker join permits
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
};

namespace {

/// Set while the current thread executes batch indices; a nested
/// run_indexed call from inside fn falls back to inline serial execution
/// instead of deadlocking on submit_mutex_.
thread_local bool t_in_batch = false;

/// Pool instruments, bound once to the global registry so the claim loop
/// only touches striped relaxed atomics.
struct PoolMetrics {
  obs::Counter& tasks;
  obs::Counter& serial_tasks;
  obs::Counter& batches;
  obs::Counter& worker_claims;
  obs::Counter& caller_claims;
  obs::Gauge& queue_depth;

  static PoolMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static PoolMetrics metrics{
        reg.counter("asrel_pool_tasks_total",
                    "Batch indices executed on the shared thread pool"),
        reg.counter("asrel_pool_serial_tasks_total",
                    "Indices executed on the serial fallback path"),
        reg.counter("asrel_pool_batches_total",
                    "Parallel batches submitted to the pool"),
        reg.counter("asrel_pool_worker_claims_total",
                    "Indices claimed by pool worker threads"),
        reg.counter("asrel_pool_caller_claims_total",
                    "Indices claimed by the submitting (caller) thread"),
        reg.gauge("asrel_pool_queue_depth",
                  "Unclaimed indices in the in-flight batch"),
    };
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = effective_threads(0);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

unsigned ThreadPool::effective_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool{effective_threads(0)};
  return pool;
}

void ThreadPool::drain_batch(Batch& batch, bool on_worker) {
  PoolMetrics& metrics = PoolMetrics::get();
  obs::Counter& claims =
      on_worker ? metrics.worker_claims : metrics.caller_claims;
  std::uint64_t executed = 0;
  {
    // One participation span per (thread, batch); recording happens after
    // the scope closes, outside the claim loop.
    obs::TraceSpan span{on_worker ? "pool.drain.worker" : "pool.drain.caller"};
    for (;;) {
      const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.count) break;
      metrics.queue_depth.add(-1);
      ++executed;
      if (!batch.failed.load(std::memory_order_relaxed)) {
        try {
          (*batch.fn)(i);
        } catch (...) {
          batch.failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock{batch.error_mutex};
          if (i < batch.error_index) {
            batch.error_index = i;
            batch.error = std::current_exception();
          }
        }
      }
      batch.remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  metrics.tasks.add(executed);
  claims.add(executed);
}

void ThreadPool::worker_loop() {
  t_in_batch = true;  // nested calls from inside fn stay serial
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      batch = batch_;
    }
    // Acquire a join permit; batches capped below the pool size leave the
    // surplus workers idle.
    unsigned slots = batch->open_slots.load(std::memory_order_relaxed);
    bool joined = false;
    while (slots > 0 && !joined) {
      joined = batch->open_slots.compare_exchange_weak(
          slots, slots - 1, std::memory_order_acq_rel);
    }
    if (!joined) continue;
    drain_batch(*batch, /*on_worker=*/true);
    if (batch->remaining.load(std::memory_order_acquire) == 0) {
      std::lock_guard<std::mutex> lock{mutex_};
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_indexed(std::size_t count, unsigned parallelism,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  PoolMetrics& metrics = PoolMetrics::get();
  const unsigned limit = parallelism == 0 ? worker_count() + 1 : parallelism;
  if (limit <= 1 || count == 1 || workers_.empty() || t_in_batch) {
    // Serial path: in order, stop at the first failure (which is by
    // construction the lowest failing index).
    for (std::size_t i = 0; i < count; ++i) fn(i);
    metrics.serial_tasks.add(count);
    return;
  }

  std::lock_guard<std::mutex> submit{submit_mutex_};
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->count = count;
  batch->remaining.store(count, std::memory_order_relaxed);
  batch->open_slots.store(limit - 1, std::memory_order_relaxed);
  metrics.batches.inc();
  metrics.queue_depth.add(static_cast<std::int64_t>(count));
  {
    std::lock_guard<std::mutex> lock{mutex_};
    batch_ = batch;
    ++generation_;
  }
  work_cv_.notify_all();

  t_in_batch = true;
  drain_batch(*batch, /*on_worker=*/false);
  t_in_batch = false;

  {
    std::unique_lock<std::mutex> lock{mutex_};
    done_cv_.wait(lock, [&] {
      return batch->remaining.load(std::memory_order_acquire) == 0;
    });
    batch_ = nullptr;
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace asrel::core
