// LookingGlass: the §6.1 investigation tool. Real looking glasses let
// anyone inspect the routes (and attached communities) a network's routers
// hold; the paper used Cogent's to discover the 174:990 tagging. This one
// answers the same queries against the simulated world, reconstructing the
// communities a route would carry at the queried AS — including action
// communities that are stripped before further redistribution and hence
// invisible in public collector data.
#pragma once

#include <optional>
#include <vector>

#include "bgp/community.hpp"
#include "bgp/propagation.hpp"
#include "topology/generator.hpp"
#include "validation/scheme.hpp"

namespace asrel::core {

struct RouteView {
  asn::Asn at;                            ///< queried AS
  asn::Asn origin;
  std::vector<asn::Asn> path;             ///< [at, ..., origin]
  std::vector<bgp::Community> communities;
  bool reachable = false;
};

class LookingGlass {
 public:
  LookingGlass(const topo::World& world, const val::SchemeDirectory& schemes,
               bgp::PropagationParams params);

  /// The best route `at` holds toward `origin`, with communities as the
  /// queried router would display them.
  [[nodiscard]] RouteView query(asn::Asn at, asn::Asn origin) const;

 private:
  const topo::World* world_;
  const val::SchemeDirectory* schemes_;
  bgp::Propagator propagator_;
};

}  // namespace asrel::core
