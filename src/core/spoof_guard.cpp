#include "core/spoof_guard.hpp"

#include <algorithm>

#include "topology/cone.hpp"

namespace asrel::core {

namespace {

using asn::Asn;

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ull + b;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  return x ^ (x >> 31);
}

/// Customer cone under an arbitrary relationship labeling: BFS over the
/// inferred provider->customer edges.
std::vector<Asn> cone_under(const infer::Inference& inference,
                            const std::unordered_map<Asn, std::vector<Asn>>&
                                inferred_customers,
                            Asn root) {
  (void)inference;
  std::vector<Asn> out;
  std::unordered_set<Asn> seen{root};
  std::vector<Asn> stack{root};
  while (!stack.empty()) {
    const Asn node = stack.back();
    stack.pop_back();
    const auto it = inferred_customers.find(node);
    if (it == inferred_customers.end()) continue;
    for (const Asn customer : it->second) {
      if (!seen.insert(customer).second) continue;
      out.push_back(customer);
      stack.push_back(customer);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

SpoofGuard::SpoofGuard(const Scenario& scenario,
                       const infer::Inference& inference)
    : scenario_(&scenario) {
  // Index the inferred provider->customer edges once.
  std::unordered_map<Asn, std::vector<Asn>> inferred_customers;
  for (const auto& link : inference.order()) {
    const auto* rel = inference.find(link);
    if (rel->rel != topo::RelType::kP2C) continue;
    const Asn customer = rel->provider == link.a ? link.b : link.a;
    inferred_customers[rel->provider].push_back(customer);
  }

  const auto& world = scenario.world();
  for (const auto& ixp : world.ixps) {
    for (const Asn member : ixp.members) {
      if (filters_.contains(member)) continue;
      auto cone = cone_under(inference, inferred_customers, member);
      auto& filter = filters_[member];
      filter.insert(member);
      filter.insert(cone.begin(), cone.end());
      true_cones_[member] = topo::customer_cone(world.graph, member);
    }
  }
}

bool SpoofGuard::would_flag(Asn member, Asn source_as) const {
  const auto it = filters_.find(member);
  if (it == filters_.end()) return true;  // no filter: flag everything
  return !it->second.contains(source_as);
}

void SpoofGuard::score_member(Asn member, int spoof_samples,
                              SpoofGuardStats& stats) const {
  const auto cone_it = true_cones_.find(member);
  if (cone_it == true_cones_.end()) return;

  // Legitimate traffic: the member plus every true-cone AS sources once.
  ++stats.legitimate_total;
  if (would_flag(member, member)) ++stats.legitimate_flagged;
  for (const Asn source : cone_it->second) {
    ++stats.legitimate_total;
    if (would_flag(member, source)) ++stats.legitimate_flagged;
  }

  // Spoofed traffic: deterministic out-of-cone sources.
  const auto& nodes = scenario_->world().graph.nodes();
  std::unordered_set<Asn> cone_set(cone_it->second.begin(),
                                   cone_it->second.end());
  cone_set.insert(member);
  int produced = 0;
  for (std::uint64_t i = 0; produced < spoof_samples && i < 64; ++i) {
    const Asn source =
        nodes[mix(member.value(), i) % nodes.size()];
    if (cone_set.contains(source)) continue;
    ++produced;
    ++stats.spoofed_total;
    if (would_flag(member, source)) ++stats.spoofed_caught;
  }
}

SpoofGuardStats SpoofGuard::evaluate(int ixp_id, int spoof_samples) const {
  SpoofGuardStats stats;
  for (const auto& ixp : scenario_->world().ixps) {
    if (ixp_id >= 0 && ixp.id != ixp_id) continue;
    for (const Asn member : ixp.members) {
      score_member(member, spoof_samples, stats);
    }
  }
  return stats;
}

std::unordered_map<rir::Region, SpoofGuardStats>
SpoofGuard::evaluate_by_region(int spoof_samples) const {
  std::unordered_map<rir::Region, SpoofGuardStats> by_region;
  for (const auto& ixp : scenario_->world().ixps) {
    auto& stats = by_region[ixp.region];
    for (const Asn member : ixp.members) {
      score_member(member, spoof_samples, stats);
    }
  }
  return by_region;
}

}  // namespace asrel::core
