#include "core/snapshot_builder.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "core/bias_audit.hpp"
#include "infer/asrank.hpp"
#include "infer/problink.hpp"
#include "infer/toposcope.hpp"
#include "topology/cone.hpp"

namespace asrel::core {

namespace {

/// Flattens an Inference into snapshot labels in its deterministic
/// first-inserted order.
io::SnapshotAlgorithm flatten(std::string name,
                              const infer::Inference& inference) {
  io::SnapshotAlgorithm algorithm;
  algorithm.name = std::move(name);
  algorithm.labels.reserve(inference.size());
  for (const auto& link : inference.order()) {
    const infer::InferredRel* rel = inference.find(link);
    if (rel == nullptr) continue;
    algorithm.labels.push_back(
        val::CleanLabel{.link = link, .rel = rel->rel,
                        .provider = rel->provider});
  }
  return algorithm;
}

}  // namespace

io::Snapshot build_snapshot(const Scenario& scenario) {
  io::Snapshot snapshot;
  snapshot.meta.as_count = scenario.params().topology.as_count;
  snapshot.meta.seed = scenario.params().topology.seed;
  snapshot.meta.scheme_seed = scenario.params().scheme_seed;

  const auto& world = scenario.world();
  const auto& graph = world.graph;
  const auto& observed = scenario.observed();

  // ---- per-AS table, sorted by ASN ----
  const auto cone_sizes = topo::customer_cone_sizes(graph);
  std::vector<asn::Asn> asns{graph.nodes().begin(), graph.nodes().end()};
  std::sort(asns.begin(), asns.end());
  snapshot.ases.reserve(asns.size());
  for (const auto asn : asns) {
    io::SnapshotAs as;
    as.asn = asn;
    as.attrs = world.attrs.at(asn);
    if (const auto index = observed.index_of(asn)) {
      as.transit_degree = observed.transit_degree(*index);
      as.node_degree = observed.node_degree(*index);
    }
    if (const auto node = graph.node_of(asn)) {
      as.cone_size = cone_sizes[*node];
    }
    snapshot.ases.push_back(std::move(as));
  }

  // ---- ground-truth edges ----
  snapshot.edges.reserve(graph.edge_count());
  for (const auto& edge : graph.edges()) {
    snapshot.edges.push_back(io::SnapshotEdge{
        .a = graph.asn_of(edge.u),
        .b = graph.asn_of(edge.v),
        .rel = edge.rel,
        .scope = edge.scope,
        .scope_via_community = edge.scope_via_community,
        .misdocumented = edge.misdocumented,
        .hybrid_rel = edge.hybrid_rel,
    });
  }
  snapshot.clique = world.clique;
  snapshot.hypergiants = world.hypergiants;

  // ---- cleaned validation data ----
  snapshot.validation = scenario.validation();

  // ---- the three inferences ----
  infer::ProbLinkParams problink_params;
  problink_params.threads = scenario.params().threads;
  infer::TopoScopeParams toposcope_params;
  toposcope_params.threads = scenario.params().threads;
  const auto asrank = infer::run_asrank(observed);
  const auto problink = infer::run_problink(observed, asrank,
                                            scenario.validation(),
                                            problink_params);
  const auto toposcope = infer::run_toposcope(observed, asrank,
                                              scenario.validation(),
                                              toposcope_params);
  snapshot.algorithms.push_back(
      flatten(std::string{kSnapshotAlgorithms[0]}, asrank.inference));
  snapshot.algorithms.push_back(
      flatten(std::string{kSnapshotAlgorithms[1]}, problink.inference));
  snapshot.algorithms.push_back(
      flatten(std::string{kSnapshotAlgorithms[2]}, toposcope.inference));

  // ---- visible links with precomputed class tags ----
  const BiasAudit audit{scenario};
  std::unordered_map<std::string, std::uint32_t> interned;
  const auto intern = [&](std::string name) {
    const auto it = interned.find(name);
    if (it != interned.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(snapshot.class_names.size());
    interned.emplace(name, id);
    snapshot.class_names.push_back(std::move(name));
    return id;
  };
  snapshot.links.reserve(audit.inferred_links().size());
  for (const auto& link : audit.inferred_links()) {
    snapshot.links.push_back(io::SnapshotLinkTag{
        .link = link,
        .regional_class = intern(audit.regional_class_of(link)),
        .topological_class = intern(audit.topological_class_of(link)),
    });
  }

  return snapshot;
}

}  // namespace asrel::core
