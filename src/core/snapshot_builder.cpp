#include "core/snapshot_builder.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "core/bias_audit.hpp"
#include "infer/asrank.hpp"
#include "infer/problink.hpp"
#include "infer/toposcope.hpp"
#include "topology/cone.hpp"

namespace asrel::core {

namespace {

/// Flattens an Inference into snapshot labels in its deterministic
/// first-inserted order.
io::SnapshotAlgorithm flatten(std::string name,
                              const infer::Inference& inference) {
  io::SnapshotAlgorithm algorithm;
  algorithm.name = std::move(name);
  algorithm.labels.reserve(inference.size());
  for (const auto& link : inference.order()) {
    const infer::InferredRel* rel = inference.find(link);
    if (rel == nullptr) continue;
    algorithm.labels.push_back(
        val::CleanLabel{.link = link, .rel = rel->rel,
                        .provider = rel->provider});
  }
  return algorithm;
}

void rebuild_ases(io::Snapshot& snapshot, const Scenario& scenario) {
  const auto& world = scenario.world();
  const auto& graph = world.graph;
  const auto& observed = scenario.observed();
  const auto cone_sizes = topo::customer_cone_sizes(graph);
  std::vector<asn::Asn> asns{graph.nodes().begin(), graph.nodes().end()};
  std::sort(asns.begin(), asns.end());
  snapshot.ases.clear();
  snapshot.ases.reserve(asns.size());
  for (const auto asn : asns) {
    io::SnapshotAs as;
    as.asn = asn;
    as.attrs = world.attrs.at(asn);
    if (const auto index = observed.index_of(asn)) {
      as.transit_degree = observed.transit_degree(*index);
      as.node_degree = observed.node_degree(*index);
    }
    if (const auto node = graph.node_of(asn)) {
      as.cone_size = cone_sizes[*node];
    }
    snapshot.ases.push_back(std::move(as));
  }
}

void rebuild_edges(io::Snapshot& snapshot, const Scenario& scenario) {
  const auto& graph = scenario.world().graph;
  snapshot.edges.clear();
  snapshot.edges.reserve(graph.live_edge_count());
  for (const auto& edge : graph.edges()) {
    if (edge.removed) continue;
    snapshot.edges.push_back(io::SnapshotEdge{
        .a = graph.asn_of(edge.u),
        .b = graph.asn_of(edge.v),
        .rel = edge.rel,
        .scope = edge.scope,
        .scope_via_community = edge.scope_via_community,
        .misdocumented = edge.misdocumented,
        .hybrid_rel = edge.hybrid_rel,
    });
  }
}

void rebuild_algorithms(io::Snapshot& snapshot, const Scenario& scenario) {
  const auto& observed = scenario.observed();
  infer::ProbLinkParams problink_params;
  problink_params.threads = scenario.params().threads;
  infer::TopoScopeParams toposcope_params;
  toposcope_params.threads = scenario.params().threads;
  const auto asrank = infer::run_asrank(observed);
  const auto problink = infer::run_problink(observed, asrank,
                                            scenario.validation(),
                                            problink_params);
  const auto toposcope = infer::run_toposcope(observed, asrank,
                                              scenario.validation(),
                                              toposcope_params);
  snapshot.algorithms.clear();
  snapshot.algorithms.push_back(
      flatten(std::string{kSnapshotAlgorithms[0]}, asrank.inference));
  snapshot.algorithms.push_back(
      flatten(std::string{kSnapshotAlgorithms[1]}, problink.inference));
  snapshot.algorithms.push_back(
      flatten(std::string{kSnapshotAlgorithms[2]}, toposcope.inference));
}

void rebuild_links(io::Snapshot& snapshot, const Scenario& scenario,
                   const SnapshotClassSource* classes) {
  // The interned string table is derived from the links section
  // (first-occurrence order over observed links), so both regenerate
  // together.
  snapshot.class_names.clear();
  snapshot.links.clear();
  std::unordered_map<std::string, std::uint32_t> interned;
  const auto intern = [&](std::string name) {
    const auto it = interned.find(name);
    if (it != interned.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(snapshot.class_names.size());
    interned.emplace(name, id);
    snapshot.class_names.push_back(std::move(name));
    return id;
  };
  const auto fill = [&](const auto& regional, const auto& topological) {
    // BiasAudit's inferred_links() is exactly observed().link_order(), so
    // both callers below emit the same link sequence.
    const auto& order = scenario.observed().link_order();
    snapshot.links.reserve(order.size());
    for (const auto& link : order) {
      snapshot.links.push_back(io::SnapshotLinkTag{
          .link = link,
          .regional_class = intern(regional(link)),
          .topological_class = intern(topological(link)),
      });
    }
  };
  if (classes != nullptr) {
    fill(classes->regional_class_of, classes->topological_class_of);
  } else {
    const BiasAudit audit{scenario};
    fill([&](const val::AsLink& link) { return audit.regional_class_of(link); },
         [&](const val::AsLink& link) {
           return audit.topological_class_of(link);
         });
  }
}

}  // namespace

void rebuild_snapshot_sections(io::Snapshot& snapshot,
                               const Scenario& scenario,
                               const SnapshotSections& sections,
                               const SnapshotClassSource* classes) {
  snapshot.meta.as_count = scenario.params().topology.as_count;
  snapshot.meta.seed = scenario.params().topology.seed;
  snapshot.meta.scheme_seed = scenario.params().scheme_seed;
  snapshot.clique = scenario.world().clique;
  snapshot.hypergiants = scenario.world().hypergiants;

  if (sections.ases) rebuild_ases(snapshot, scenario);
  if (sections.edges) rebuild_edges(snapshot, scenario);
  if (sections.validation) snapshot.validation = scenario.validation();
  if (sections.algorithms) rebuild_algorithms(snapshot, scenario);
  if (sections.links) rebuild_links(snapshot, scenario, classes);
}

io::Snapshot build_snapshot(const Scenario& scenario) {
  io::Snapshot snapshot;
  rebuild_snapshot_sections(snapshot, scenario, SnapshotSections::all());
  return snapshot;
}

}  // namespace asrel::core
