#include "core/v6_world.hpp"

#include <algorithm>

namespace asrel::core {

namespace {

using asn::Asn;

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ull + b;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  return x ^ (x >> 31);
}

double roll(std::uint64_t a, std::uint64_t b) {
  return static_cast<double>(mix(a, b) >> 11) * 0x1.0p-53;
}

}  // namespace

bool v6_capable(const topo::World& world, Asn asn, const V6Params& params) {
  const auto& attrs = world.attrs.at(asn);
  double p = params.adoption_stub;
  switch (attrs.tier) {
    case topo::Tier::kClique:
      p = params.adoption_clique;
      break;
    case topo::Tier::kLargeTransit:
      p = params.adoption_large;
      break;
    case topo::Tier::kMidTransit:
      p = params.adoption_mid;
      break;
    case topo::Tier::kSmallTransit:
      p = params.adoption_small;
      break;
    case topo::Tier::kStub:
      break;
  }
  if (attrs.hypergiant) p = params.adoption_large;
  if (attrs.region == rir::Region::kLacnic ||
      attrs.region == rir::Region::kApnic) {
    p = std::min(1.0, p * params.scarce_region_bonus);
  }
  return roll(asn.value(), params.salt) < p;
}

topo::World build_v6_world(const topo::World& world, const V6Params& params) {
  topo::World v6;
  v6.params = world.params;
  v6.cogent_like = world.cogent_like;

  for (const Asn asn : world.graph.nodes()) {
    if (!v6_capable(world, asn, params)) continue;
    v6.graph.add_node(asn);
    v6.attrs[asn] = world.attrs.at(asn);
  }
  for (const auto& edge : world.graph.edges()) {
    if (edge.removed) continue;
    const Asn a = world.graph.asn_of(edge.u);
    const Asn b = world.graph.asn_of(edge.v);
    if (!v6.graph.node_of(a) || !v6.graph.node_of(b)) continue;
    if (roll(mix(a.value(), b.value()), params.salt ^ 0xD5ull) >=
        params.session_dual_stack) {
      continue;
    }
    // add_edge rebuilds the node ids; the relationship payload carries
    // over, and a == asn_of(edge.u) keeps the provider side for kP2C.
    v6.graph.add_edge(a, b, edge);
  }
  for (const Asn member : world.clique) {
    if (v6.graph.node_of(member)) v6.clique.push_back(member);
  }
  for (const Asn giant : world.hypergiants) {
    if (v6.graph.node_of(giant)) v6.hypergiants.push_back(giant);
  }
  for (const auto& ixp : world.ixps) {
    topo::Ixp filtered;
    filtered.id = ixp.id;
    filtered.region = ixp.region;
    for (const Asn member : ixp.members) {
      if (v6.graph.node_of(member)) filtered.members.push_back(member);
    }
    if (!filtered.members.empty()) v6.ixps.push_back(std::move(filtered));
  }
  v6.as2org = world.as2org;
  v6.delegations = world.delegations;
  for (const auto& [asn, prefixes] : world.prefixes) {
    if (v6.graph.node_of(asn)) v6.prefixes.emplace(asn, prefixes);
  }
  return v6;
}

CongruenceReport compare_stacks(const infer::Inference& v4,
                                const infer::Inference& v6) {
  CongruenceReport report;
  report.v4_links = v4.size();
  report.v6_links = v6.size();
  for (const auto& link : v6.order()) {
    const auto* rel6 = v6.find(link);
    const auto* rel4 = v4.find(link);
    if (rel4 == nullptr) continue;
    ++report.shared_links;
    if (rel4->rel == rel6->rel) {
      if (rel4->rel != topo::RelType::kP2C ||
          rel4->provider == rel6->provider) {
        ++report.congruent;
      } else {
        ++report.flipped_p2c;
      }
    } else {
      ++report.type_mismatch;
    }
  }
  return report;
}

}  // namespace asrel::core
