// Peerlock (McDaniel et al., cited as [47]/[48]): router-configuration
// snippets that reject route leaks — paths that carry a protected Tier-1
// through a session where no Tier-1 should ever appear (customer or peer
// sessions). §7 proposes Peerlock-config generation as the do-ut-des
// incentive for operators to share accurate relationships: the filters are
// only as good as the relationship data behind them.
//
// This module generates the per-AS session filters from *any* relationship
// source (ground truth, a classifier's output, or the validated subset)
// and scores them against simulated route leaks, quantifying the §7 claim.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "infer/inference.hpp"

namespace asrel::core {

/// Relationship oracle: returns the label for a link, or nullptr when the
/// source has no opinion (e.g. the link is not in the validation data).
using RelLookup =
    std::function<const infer::InferredRel*(const val::AsLink&)>;

/// Adapters for the three interesting sources.
[[nodiscard]] RelLookup lookup_from_inference(const infer::Inference& inference);
[[nodiscard]] RelLookup lookup_from_validation(
    std::span<const val::CleanLabel> validation);
[[nodiscard]] RelLookup lookup_from_ground_truth(const topo::World& world);

/// One AS's Peerlock policy: the sessions on which paths containing a
/// protected ASN are rejected (customer and peer sessions per the
/// relationship source; sessions with unknown relationships stay open —
/// an operator will not filter a session it cannot classify).
struct PeerlockPolicy {
  asn::Asn owner;
  std::vector<asn::Asn> filtered_sessions;
  std::vector<asn::Asn> unknown_sessions;
};

[[nodiscard]] PeerlockPolicy build_peerlock_policy(const topo::World& world,
                                                   const RelLookup& rel_of,
                                                   asn::Asn owner);

/// Renders the policy as a router-config-style snippet (protected set =
/// the world's clique).
[[nodiscard]] std::string render_peerlock_config(
    const topo::World& world, const PeerlockPolicy& policy);

struct LeakReport {
  std::size_t leaks_simulated = 0;
  std::size_t blocked = 0;
  std::size_t passed_unknown_session = 0;  ///< no label -> session open
  std::size_t passed_wrong_label = 0;      ///< labeled provider, so no filter
  [[nodiscard]] double block_rate() const {
    return leaks_simulated == 0
               ? 0.0
               : static_cast<double>(blocked) /
                     static_cast<double>(leaks_simulated);
  }
};

/// Simulates classic route leaks: a multihomed customer re-announces a
/// Tier-1-bearing path learned from one provider to another provider. The
/// receiving provider blocks it iff its Peerlock policy filters the
/// leaker's session. Deterministic in `seed`.
[[nodiscard]] LeakReport simulate_route_leaks(const Scenario& scenario,
                                              const RelLookup& rel_of,
                                              int max_leaks = 2000,
                                              std::uint64_t seed = 31337);

}  // namespace asrel::core
