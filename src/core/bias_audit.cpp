#include "core/bias_audit.hpp"

#include <unordered_set>

#include "core/parallel.hpp"
#include "eval/ppdc.hpp"
#include "obs/trace.hpp"

namespace asrel::core {

BiasAudit::BiasAudit(const Scenario& scenario, unsigned threads)
    : scenario_(&scenario),
      topo_(eval::TopoClassifier::from_world(scenario.world())) {
  obs::StageScope stage{"audit.tabulate"};
  const auto& observed = scenario.observed();
  inferred_links_.assign(observed.link_order().begin(),
                         observed.link_order().end());

  // Tabulate both class names per link up front. The classifiers are pure
  // functions of read-only state, so the links partition freely across
  // workers; slots land by index, making the caches (and everything derived
  // from them) independent of the thread count.
  core::ThreadPool& pool = core::ThreadPool::shared();
  const unsigned workers = core::ThreadPool::effective_threads(threads);
  regional_cache_.resize(inferred_links_.size());
  topological_cache_.resize(inferred_links_.size());
  pool.run_indexed(inferred_links_.size(), workers, [&](std::size_t i) {
    regional_cache_[i] =
        eval::regional_class(scenario_->region_mapper(), inferred_links_[i]);
    topological_cache_[i] = topo_.class_of(inferred_links_[i]);
  });
  link_slot_.reserve(inferred_links_.size());
  for (std::size_t i = 0; i < inferred_links_.size(); ++i) {
    link_slot_.emplace(inferred_links_[i], static_cast<std::uint32_t>(i));
  }

  std::unordered_set<val::AsLink> validated;
  for (const auto& label : scenario.validation()) validated.insert(label.link);

  for (std::size_t i = 0; i < inferred_links_.size(); ++i) {
    if (topological_cache_[i] == "TR°") {
      transit_links_.push_back(inferred_links_[i]);
      if (validated.contains(inferred_links_[i])) {
        validated_transit_links_.push_back(inferred_links_[i]);
      }
    }
  }
}

std::string BiasAudit::regional_class_of(const val::AsLink& link) const {
  const auto it = link_slot_.find(link);
  if (it != link_slot_.end()) return regional_cache_[it->second];
  return eval::regional_class(scenario_->region_mapper(), link);
}

std::string BiasAudit::topological_class_of(const val::AsLink& link) const {
  const auto it = link_slot_.find(link);
  if (it != link_slot_.end()) return topological_cache_[it->second];
  return topo_.class_of(link);
}

eval::CoverageReport BiasAudit::regional_coverage() const {
  return eval::coverage_by_class(
      inferred_links_, scenario_->validation(),
      [this](const val::AsLink& link) { return regional_class_of(link); });
}

eval::CoverageReport BiasAudit::topological_coverage() const {
  return eval::coverage_by_class(
      inferred_links_, scenario_->validation(),
      [this](const val::AsLink& link) { return topological_class_of(link); });
}

namespace {

eval::Heatmap build_for(
    const std::vector<val::AsLink>& links,
    const std::function<std::uint32_t(asn::Asn)>& metric,
    const eval::HeatmapSpec& spec) {
  return eval::build_link_heatmap(links, metric, spec);
}

}  // namespace

BiasAudit::HeatmapPair BiasAudit::transit_degree_heatmaps(
    const eval::HeatmapSpec& spec) const {
  const auto& observed = scenario_->observed();
  const auto metric = [&observed](asn::Asn asn) -> std::uint32_t {
    const auto index = observed.index_of(asn);
    return index ? observed.transit_degree(*index) : 0;
  };
  return {build_for(transit_links_, metric, spec),
          build_for(validated_transit_links_, metric, spec)};
}

BiasAudit::HeatmapPair BiasAudit::node_degree_heatmaps(
    const eval::HeatmapSpec& spec) const {
  const auto& observed = scenario_->observed();
  const auto metric = [&observed](asn::Asn asn) -> std::uint32_t {
    const auto index = observed.index_of(asn);
    return index ? observed.node_degree(*index) : 0;
  };
  return {build_for(transit_links_, metric, spec),
          build_for(validated_transit_links_, metric, spec)};
}

BiasAudit::HeatmapPair BiasAudit::ppdc_heatmaps(
    const infer::Inference& inference, bool ignore_vp_links,
    const eval::HeatmapSpec& spec) const {
  const auto sizes = eval::ppdc_sizes(scenario_->observed(), inference);
  const auto metric = [&sizes](asn::Asn asn) -> std::uint32_t {
    const auto it = sizes.find(asn);
    return it == sizes.end() ? 0 : it->second;
  };
  if (!ignore_vp_links) {
    return {build_for(transit_links_, metric, spec),
            build_for(validated_transit_links_, metric, spec)};
  }
  // Fig. 8 variant: drop links incident to a route-collector peer.
  std::unordered_set<asn::Asn> vp_set;
  for (const auto& vp : scenario_->vantage_points()) vp_set.insert(vp.asn);
  const auto filter = [&vp_set](const std::vector<val::AsLink>& links) {
    std::vector<val::AsLink> kept;
    for (const auto& link : links) {
      if (!vp_set.contains(link.a) && !vp_set.contains(link.b)) {
        kept.push_back(link);
      }
    }
    return kept;
  };
  return {build_for(filter(transit_links_), metric, spec),
          build_for(filter(validated_transit_links_), metric, spec)};
}

eval::ValidationTable BiasAudit::validation_table(
    const infer::Inference& inference, std::size_t min_links) const {
  const auto pairs =
      eval::make_eval_pairs(scenario_->validation(), inference);

  eval::ValidationTable table;
  table.total = eval::compute_class_metrics(pairs, "Total°");

  const auto regional = eval::build_validation_table(
      pairs,
      [this](const val::AsLink& link) { return regional_class_of(link); },
      min_links);
  const auto topological = eval::build_validation_table(
      pairs,
      [this](const val::AsLink& link) { return topological_class_of(link); },
      min_links);
  table.rows = regional.rows;
  table.rows.insert(table.rows.end(), topological.rows.begin(),
                    topological.rows.end());
  return table;
}

eval::SamplingResult BiasAudit::sampling_experiment(
    const infer::Inference& inference, const std::string& class_name,
    const eval::SamplingParams& params) const {
  const auto pairs =
      eval::make_eval_pairs(scenario_->validation(), inference);
  std::vector<eval::EvalPair> in_class;
  for (const auto& pair : pairs) {
    if (regional_class_of(pair.link) == class_name ||
        topological_class_of(pair.link) == class_name) {
      in_class.push_back(pair);
    }
  }
  return eval::run_sampling_experiment(in_class, params);
}

}  // namespace asrel::core
