// The paper's §2 motivating example, made executable.
//
// Müller et al. (cited as [50]) infer spoofed traffic at IXPs: a packet a
// member sends into the fabric is "spoofed" if its source address does not
// belong to the member's customer cone — where the cone is computed from
// *inferred* AS relationships. §2 warns that misclassifying a P2C link as
// P2P shrinks the computed cone and falsely flags the customer's legitimate
// traffic, with reputational consequences.
//
// SpoofGuard builds the per-member source filters from any relationship
// labeling and scores them against ground truth: legitimate traffic =
// sources drawn from the member's *true* cone; spoofed traffic = sources
// drawn outside it. The false-flag rate per region then connects the
// regional validation bias of Fig. 1 to a concrete operational harm.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/scenario.hpp"
#include "infer/inference.hpp"

namespace asrel::core {

struct SpoofGuardStats {
  std::uint64_t legitimate_total = 0;
  std::uint64_t legitimate_flagged = 0;  ///< false positives (§2's harm)
  std::uint64_t spoofed_total = 0;
  std::uint64_t spoofed_caught = 0;

  [[nodiscard]] double false_flag_rate() const {
    return legitimate_total == 0
               ? 0.0
               : static_cast<double>(legitimate_flagged) /
                     static_cast<double>(legitimate_total);
  }
  [[nodiscard]] double detection_rate() const {
    return spoofed_total == 0
               ? 0.0
               : static_cast<double>(spoofed_caught) /
                     static_cast<double>(spoofed_total);
  }
};

class SpoofGuard {
 public:
  /// Builds per-AS source filters (the AS itself plus its customer cone)
  /// from the given relationship labeling.
  SpoofGuard(const Scenario& scenario, const infer::Inference& inference);

  /// True if the filter for `member` would flag a packet sourced at
  /// `source_as` as spoofed.
  [[nodiscard]] bool would_flag(asn::Asn member, asn::Asn source_as) const;

  /// Scores the filters for the members of one IXP (or all IXPs when
  /// `ixp_id` < 0): for every member, every true-cone AS is sent once as
  /// legitimate traffic, and `spoof_samples` deterministic out-of-cone
  /// sources are sent as spoofed traffic.
  [[nodiscard]] SpoofGuardStats evaluate(int ixp_id,
                                         int spoof_samples = 4) const;

  /// §2 meets Fig. 1: false-flag rates split by the IXP's service region.
  [[nodiscard]] std::unordered_map<rir::Region, SpoofGuardStats>
  evaluate_by_region(int spoof_samples = 4) const;

 private:
  [[nodiscard]] std::vector<asn::Asn> inferred_cone(asn::Asn member) const;
  void score_member(asn::Asn member, int spoof_samples,
                    SpoofGuardStats& stats) const;

  const Scenario* scenario_;
  /// member -> allowed source set (member + inferred customer cone)
  std::unordered_map<asn::Asn, std::unordered_set<asn::Asn>> filters_;
  /// member -> true cone (ground truth)
  std::unordered_map<asn::Asn, std::vector<asn::Asn>> true_cones_;
};

}  // namespace asrel::core
