#include "core/link_features.hpp"

#include <algorithm>

namespace asrel::core {

namespace {

using asn::Asn;

/// Sorted-unique insert; returns true when the value was new.
template <typename T>
bool insert_unique(std::vector<T>& values, const T& value) {
  const auto it = std::lower_bound(values.begin(), values.end(), value);
  if (it != values.end() && *it == value) return false;
  values.insert(it, value);
  return true;
}

}  // namespace

LinkFeatureExtractor::LinkFeatureExtractor(const Scenario& scenario,
                                           const infer::Inference& inference) {
  const auto& observed = scenario.observed();
  const auto& world = scenario.world();

  // Per-origin prefix statistics.
  const auto prefix_stats = [&](Asn origin) {
    std::pair<std::uint32_t, std::uint64_t> out{0, 0};
    const auto it = world.prefixes.find(origin);
    if (it == world.prefixes.end()) return out;
    out.first = static_cast<std::uint32_t>(it->second.size());
    for (const auto& prefix : it->second) {
      out.second += prefix.address_count();
    }
    return out;
  };

  // Accumulators per link id (aligned with observed.link_order()).
  const auto& links = observed.link_order();
  struct Accumulator {
    std::vector<Asn> left;
    std::vector<Asn> right;
    std::vector<Asn> redistributed_origins;
    std::vector<Asn> originated_origins;
  };
  std::vector<Accumulator> acc(links.size());

  for (std::size_t p = 0; p < observed.path_count(); ++p) {
    const auto path = observed.path(p);
    const Asn origin = path.back();
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const val::AsLink link{path[i], path[i + 1]};
      const auto* info = observed.link(link);
      if (info == nullptr) continue;
      auto& a = acc[info->link_id];
      for (std::size_t j = 0; j < i; ++j) insert_unique(a.left, path[j]);
      for (std::size_t j = i + 2; j < path.size(); ++j) {
        insert_unique(a.right, path[j]);
      }
      insert_unique(a.redistributed_origins, origin);
      if (i + 2 == path.size()) insert_unique(a.originated_origins, origin);
    }
  }

  // IXP co-membership.
  std::unordered_map<Asn, std::vector<int>> ixp_memberships;
  for (const auto& ixp : world.ixps) {
    for (const Asn member : ixp.members) {
      ixp_memberships[member].push_back(ixp.id);
    }
  }
  for (auto& [asn, list] : ixp_memberships) std::sort(list.begin(), list.end());

  const auto ppdc = eval::ppdc_sizes(observed, inference);

  const auto relative_diff = [](double a, double b) {
    const double larger = std::max(a, b);
    return larger == 0 ? 0.0 : std::abs(a - b) / larger;
  };
  const auto is_manrs = [&](Asn asn) {
    const auto& attrs = world.attrs.at(asn);
    return attrs.attends_meetings && attrs.maintains_rpsl;
  };

  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto& link = links[i];
    const auto& a = acc[i];
    LinkFeatures f;
    f.vp_visibility = observed.link(link)->vp_count;
    for (const Asn origin : a.redistributed_origins) {
      const auto [count, addresses] = prefix_stats(origin);
      f.prefixes_redistributed += count;
      f.addresses_redistributed += addresses;
    }
    for (const Asn origin : a.originated_origins) {
      const auto [count, addresses] = prefix_stats(origin);
      f.prefixes_originated += count;
      f.addresses_originated += addresses;
    }
    f.ases_left = static_cast<std::uint32_t>(a.left.size());
    f.ases_right = static_cast<std::uint32_t>(a.right.size());

    const auto ia = observed.index_of(link.a);
    const auto ib = observed.index_of(link.b);
    f.transit_degree_diff =
        relative_diff(ia ? observed.transit_degree(*ia) : 0,
                      ib ? observed.transit_degree(*ib) : 0);
    const auto ppdc_of = [&](Asn asn) -> double {
      const auto it = ppdc.find(asn);
      return it == ppdc.end() ? 0.0 : it->second;
    };
    f.ppdc_diff = relative_diff(ppdc_of(link.a), ppdc_of(link.b));

    const auto ixps_a = ixp_memberships.find(link.a);
    const auto ixps_b = ixp_memberships.find(link.b);
    if (ixps_a != ixp_memberships.end() && ixps_b != ixp_memberships.end()) {
      std::vector<int> common;
      std::set_intersection(ixps_a->second.begin(), ixps_a->second.end(),
                            ixps_b->second.begin(), ixps_b->second.end(),
                            std::back_inserter(common));
      f.common_ixps = static_cast<std::uint32_t>(common.size());
    }
    f.manrs_participants = static_cast<std::uint32_t>(
        (is_manrs(link.a) ? 1 : 0) + (is_manrs(link.b) ? 1 : 0));
    features_.emplace(link, f);
  }
}

const LinkFeatures* LinkFeatureExtractor::find(const val::AsLink& link) const {
  const auto it = features_.find(link);
  return it == features_.end() ? nullptr : &it->second;
}

}  // namespace asrel::core
