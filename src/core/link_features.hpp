// Appendix C: the twelve per-link features the paper proposes for
// identifying further groups of "hard links".
//
// Each feature is computed from data a researcher could actually obtain:
// collector paths, originated-prefix tables (route objects / RIBs), IXP
// membership lists (PeeringDB), and public behaviour lists (MANRS
// participation). Two substitutions, documented per field: feature 1
// (visibility over time) uses single-snapshot VP visibility — the simulator
// has one snapshot; feature 11 (common private facilities) is not modeled
// and always 0 (our co-location substrate is IXPs only).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/scenario.hpp"
#include "eval/ppdc.hpp"
#include "infer/inference.hpp"
#include "validation/label.hpp"

namespace asrel::core {

struct LinkFeatures {
  // (1) visibility: distinct vantage points observing the link
  //     (single-snapshot stand-in for "visibility over time").
  std::uint32_t vp_visibility = 0;
  // (2)/(3) prefixes redistributed via the link and the address space they
  //     cover (prefixes of every origin whose observed paths cross it).
  std::uint32_t prefixes_redistributed = 0;
  std::uint64_t addresses_redistributed = 0;
  // (4)/(5) prefixes originated through the link (link adjacent to the
  //     origin) and their address space.
  std::uint32_t prefixes_originated = 0;
  std::uint64_t addresses_originated = 0;
  // (6) ASes that can observe the link (occur left of it in a path).
  std::uint32_t ases_left = 0;
  // (7) ASes that may receive traffic via it (occur right of it).
  std::uint32_t ases_right = 0;
  // (8) relative transit-degree difference of the incident ASes, in [0, 1].
  double transit_degree_diff = 0.0;
  // (9) relative PPDC-size difference, in [0, 1].
  double ppdc_diff = 0.0;
  // (10) IXPs where both incident ASes are members.
  std::uint32_t common_ixps = 0;
  // (11) common private peering facilities — not modeled, always 0.
  std::uint32_t common_facilities = 0;
  // (12) operator hygiene: how many of the two incident ASes are
  //     MANRS-style participants (attend meetings + maintain RPSL).
  std::uint32_t manrs_participants = 0;
};

/// Computes the features for every visible link in one pass over the
/// observed paths. The `inference` parameter feeds the PPDC metric (which,
/// as §B notes, depends on inferred relationships and inherits their bias).
class LinkFeatureExtractor {
 public:
  LinkFeatureExtractor(const Scenario& scenario,
                       const infer::Inference& inference);

  [[nodiscard]] const LinkFeatures* find(const val::AsLink& link) const;
  [[nodiscard]] const std::unordered_map<val::AsLink, LinkFeatures>& all()
      const {
    return features_;
  }

 private:
  std::unordered_map<val::AsLink, LinkFeatures> features_;
};

}  // namespace asrel::core
