#include "core/scenario.hpp"

#include "obs/trace.hpp"

namespace asrel::core {

std::unique_ptr<Scenario> Scenario::build(const ScenarioParams& params) {
  obs::StageScope scenario_scope{"pipeline.build"};
  auto scenario = std::unique_ptr<Scenario>(new Scenario);
  scenario->params_ = params;
  if (params.threads != 0) {
    scenario->params_.propagation.threads = params.threads;
    scenario->params_.extract.threads = params.threads;
  }
  const ScenarioParams& effective = scenario->params_;

  // 1. The world and its companion data sets.
  {
    obs::StageScope scope{"pipeline.topology"};
    scenario->world_ = topo::generate(params.topology);
  }

  // 2. Observation: collectors, propagation, sanitized paths.
  {
    obs::StageScope scope{"pipeline.vantage_points"};
    scenario->vps_ = bgp::select_vantage_points(scenario->world_,
                                                params.vantage);
  }
  const bgp::Propagator propagator{scenario->world_, effective.propagation};
  scenario->paths_ = bgp::collect_paths(propagator, scenario->vps_);
  {
    obs::StageScope scope{"pipeline.sanitize"};
    scenario->observed_ = infer::ObservedPaths::build(
        scenario->paths_, &scenario->sanitize_stats_);
  }

  // 3. Validation compilation (Luckie-style communities, plus optional
  //    secondary sources).
  {
    obs::StageScope scope{"pipeline.schemes"};
    scenario->schemes_ =
        val::SchemeDirectory::build(scenario->world_, params.scheme_seed);
  }
  scenario->raw_validation_ = val::extract_from_communities(
      propagator, scenario->paths_, scenario->schemes_, effective.extract,
      &scenario->extract_stats_);
  if (params.include_rpsl_source) {
    const auto irr = rpsl::synthesize_irr(scenario->world_, params.irr);
    scenario->raw_validation_.merge(val::extract_from_rpsl(irr));
  }
  if (params.include_direct_reports) {
    scenario->raw_validation_.merge(
        val::collect_direct_reports(scenario->world_, params.reports));
  }

  // 4. Cleaning (§4.2) against the as2org data.
  {
    obs::StageScope scope{"pipeline.clean"};
    scenario->orgs_ = org::OrgMap{scenario->world_.as2org};
    scenario->validation_ =
        val::clean(scenario->raw_validation_, scenario->orgs_, params.cleaning,
                   &scenario->cleaning_stats_);
  }

  // 5. ASN -> region mapping: IANA bootstrap refined by the synthesized
  //    delegation files (§5).
  {
    obs::StageScope scope{"pipeline.regions"};
    for (const auto& file : scenario->world_.delegations) {
      scenario->mapper_.apply(file);
    }
  }
  return scenario;
}

}  // namespace asrel::core
