#include "core/scenario.hpp"

#include "obs/trace.hpp"

namespace asrel::core {

std::unique_ptr<Scenario> Scenario::build(const ScenarioParams& params) {
  obs::StageScope scenario_scope{"pipeline.build"};
  auto scenario = std::unique_ptr<Scenario>(new Scenario);
  scenario->params_ = params;
  if (params.threads != 0) {
    scenario->params_.propagation.threads = params.threads;
    scenario->params_.extract.threads = params.threads;
  }
  const ScenarioParams& effective = scenario->params_;

  // 1. The world and its companion data sets.
  {
    obs::StageScope scope{"pipeline.topology"};
    scenario->world_ = topo::generate(params.topology);
  }

  // 2. Observation: collectors, propagation, sanitized paths.
  {
    obs::StageScope scope{"pipeline.vantage_points"};
    scenario->vps_ = bgp::select_vantage_points(scenario->world_,
                                                params.vantage);
  }
  const bgp::Propagator propagator{scenario->world_, effective.propagation};
  scenario->paths_ = bgp::collect_paths(propagator, scenario->vps_);
  scenario->finish_from_paths();
  return scenario;
}

std::unique_ptr<Scenario> Scenario::from_parts(
    const ScenarioParams& params, topo::World world,
    std::vector<bgp::VantagePoint> vps, bgp::PathTable paths) {
  auto scenario = std::unique_ptr<Scenario>(new Scenario);
  scenario->params_ = params;
  if (params.threads != 0) {
    scenario->params_.propagation.threads = params.threads;
    scenario->params_.extract.threads = params.threads;
  }
  scenario->world_ = std::move(world);
  scenario->vps_ = std::move(vps);
  scenario->paths_ = std::move(paths);
  scenario->finish_from_paths();
  return scenario;
}

void Scenario::finish_from_paths() {
  const ScenarioParams& effective = params_;
  {
    obs::StageScope scope{"pipeline.sanitize"};
    observed_ = infer::ObservedPaths::build(paths_, &sanitize_stats_);
  }

  // 3. Validation compilation (Luckie-style communities, plus optional
  //    secondary sources).
  {
    obs::StageScope scope{"pipeline.schemes"};
    schemes_ = val::SchemeDirectory::build(world_, effective.scheme_seed);
  }
  const bgp::Propagator propagator{world_, effective.propagation};
  raw_validation_ = val::extract_from_communities(
      propagator, paths_, schemes_, effective.extract, &extract_stats_);
  if (effective.include_rpsl_source) {
    const auto irr = rpsl::synthesize_irr(world_, effective.irr);
    raw_validation_.merge(val::extract_from_rpsl(irr));
  }
  if (effective.include_direct_reports) {
    raw_validation_.merge(
        val::collect_direct_reports(world_, effective.reports));
  }

  // 4. Cleaning (§4.2) against the as2org data.
  {
    obs::StageScope scope{"pipeline.clean"};
    orgs_ = org::OrgMap{world_.as2org};
    validation_ = val::clean(raw_validation_, orgs_, effective.cleaning,
                             &cleaning_stats_);
  }

  // 5. ASN -> region mapping: IANA bootstrap refined by the synthesized
  //    delegation files (§5).
  {
    obs::StageScope scope{"pipeline.regions"};
    mapper_ = rir::RegionMapper{};
    for (const auto& file : world_.delegations) {
      mapper_.apply(file);
    }
  }
}

}  // namespace asrel::core
