// BiasAudit: the paper's analysis toolkit over one Scenario.
//
// Produces every §5/§6/appendix artifact: regional and topological
// coverage reports (Fig. 1/2), metric heatmaps over TR° links (Fig. 3 and
// Figs. 7-9), combined per-class validation tables (Tables 1-3), and the
// Appendix A sampling experiment.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/scenario.hpp"
#include "eval/coverage.hpp"
#include "eval/heatmap.hpp"
#include "eval/link_class.hpp"
#include "eval/report.hpp"
#include "eval/sampling.hpp"
#include "infer/inference.hpp"

namespace asrel::core {

class BiasAudit {
 public:
  /// Uses the scenario's own `threads` knob for the per-link tabulation.
  explicit BiasAudit(const Scenario& scenario)
      : BiasAudit(scenario, scenario.params().threads) {}
  /// `threads`: worker count for the per-link class tabulation
  /// (0 = hardware concurrency, 1 = serial). Reports are byte-identical
  /// for every setting.
  BiasAudit(const Scenario& scenario, unsigned threads);

  // ---- §5: is the validation data biased? ----
  [[nodiscard]] eval::CoverageReport regional_coverage() const;    // Fig. 1
  [[nodiscard]] eval::CoverageReport topological_coverage() const; // Fig. 2

  /// Metric heatmaps over TR° links, inferred vs validated (Fig. 3/7/8/9).
  struct HeatmapPair {
    eval::Heatmap inferred;
    eval::Heatmap validated;
  };
  [[nodiscard]] HeatmapPair transit_degree_heatmaps(
      const eval::HeatmapSpec& spec = {}) const;  // Fig. 3
  [[nodiscard]] HeatmapPair node_degree_heatmaps(
      const eval::HeatmapSpec& spec = {}) const;  // Fig. 9
  /// PPDC variants need an inference (the metric depends on inferred rels).
  [[nodiscard]] HeatmapPair ppdc_heatmaps(
      const infer::Inference& inference, bool ignore_vp_links,
      const eval::HeatmapSpec& spec = {.x_cap = 750,
                                       .y_cap = 45}) const;  // Fig. 7/8

  // ---- §6: is the validation biased? ----
  /// Combined table: Total° + regional classes + topological classes with
  /// at least `min_links` validated links (Tables 1-3).
  [[nodiscard]] eval::ValidationTable validation_table(
      const infer::Inference& inference, std::size_t min_links = 500) const;

  /// Appendix A: sampling correlation for one class (e.g. "T1-TR").
  [[nodiscard]] eval::SamplingResult sampling_experiment(
      const infer::Inference& inference, const std::string& class_name,
      const eval::SamplingParams& params = {}) const;

  // ---- shared helpers ----
  [[nodiscard]] std::string regional_class_of(const val::AsLink& link) const;
  [[nodiscard]] std::string topological_class_of(
      const val::AsLink& link) const;
  /// All visible ("inferred") links, the §5 denominator.
  [[nodiscard]] const std::vector<val::AsLink>& inferred_links() const {
    return inferred_links_;
  }
  /// The visible TR° links (both endpoints transit, not T1/hypergiant).
  [[nodiscard]] const std::vector<val::AsLink>& transit_links() const {
    return transit_links_;
  }
  [[nodiscard]] const eval::TopoClassifier& topo_classifier() const {
    return topo_;
  }

 private:
  const Scenario* scenario_;
  eval::TopoClassifier topo_;
  std::vector<val::AsLink> inferred_links_;
  std::vector<val::AsLink> transit_links_;
  std::vector<val::AsLink> validated_transit_links_;
  // Per-link class names, tabulated once (in parallel) over the inferred
  // links; class_of falls back to direct computation for other links.
  std::unordered_map<val::AsLink, std::uint32_t> link_slot_;
  std::vector<std::string> regional_cache_;
  std::vector<std::string> topological_cache_;
};

}  // namespace asrel::core
