// The §6.1 case study, generalized: explain why a classifier wrongly calls
// T1-TR links P2P.
//
// Steps mirror the paper: collect the wrongly-inferred-P2P T1-TR links
// ("target links"), find the Tier-1 that dominates them, check the observed
// paths for `C|T1|X` triplets with another clique AS C (the evidence ASRank
// needs for a P2C verdict), then query the looking glass for each target
// link and classify the root cause: a no-export-to-peers action community
// (partial transit), a silent provider-side arrangement, or inaccurate
// validation data.
#pragma once

#include <string>
#include <vector>

#include "core/bias_audit.hpp"
#include "core/looking_glass.hpp"
#include "core/scenario.hpp"
#include "infer/inference.hpp"

namespace asrel::core {

struct TargetLink {
  asn::Asn tier1;
  asn::Asn other;
  bool clique_triplet_found = false;  ///< some C|T1|other with C in clique
  bool action_community_seen = false; ///< looking glass shows the 990 tag
  bool silent_partial_transit = false;///< restricted scope w/o community
  bool validation_was_wrong = false;  ///< ground truth really is P2P
};

struct CaseStudyReport {
  std::size_t wrong_p2p_t1_tr = 0;  ///< all target links
  asn::Asn dominant_tier1;
  std::size_t dominant_count = 0;   ///< targets involving the dominant T1
  std::vector<TargetLink> targets;  ///< targets of the dominant T1
  std::size_t with_clique_triplet = 0;
  std::size_t with_action_community = 0;
  std::size_t with_silent_partial_transit = 0;
  std::size_t with_wrong_validation = 0;
};

[[nodiscard]] CaseStudyReport run_case_study(const Scenario& scenario,
                                             const BiasAudit& audit,
                                             const infer::Inference& inference);

[[nodiscard]] std::string render(const CaseStudyReport& report);

}  // namespace asrel::core
