#include "core/case_study.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_set>

namespace asrel::core {

CaseStudyReport run_case_study(const Scenario& scenario,
                               const BiasAudit& audit,
                               const infer::Inference& inference) {
  CaseStudyReport report;
  const auto& world = scenario.world();

  // ---- 1. Target links: validated P2C, inferred P2P, class T1-TR ---------
  const auto pairs =
      eval::make_eval_pairs(scenario.validation(), inference);
  std::map<asn::Asn, std::vector<val::AsLink>> by_tier1;
  for (const auto& pair : pairs) {
    if (audit.topological_class_of(pair.link) != "T1-TR") continue;
    if (pair.validated != topo::RelType::kP2C) continue;
    if (pair.inferred != topo::RelType::kP2P) continue;
    ++report.wrong_p2p_t1_tr;
    const auto t1 =
        audit.topo_classifier().category_of(pair.link.a) ==
                eval::TopoCategory::kTier1
            ? pair.link.a
            : pair.link.b;
    by_tier1[t1].push_back(pair.link);
  }
  for (const auto& [t1, links] : by_tier1) {
    if (links.size() > report.dominant_count) {
      report.dominant_count = links.size();
      report.dominant_tier1 = t1;
    }
  }
  if (report.dominant_count == 0) return report;

  // ---- 2. Triplet search: any C|T1|X with C another clique member? -------
  std::unordered_set<asn::Asn> clique_set(world.clique.begin(),
                                          world.clique.end());
  const auto& observed = scenario.observed();
  std::unordered_set<val::AsLink> target_set;
  for (const auto& link : by_tier1[report.dominant_tier1]) {
    target_set.insert(link);
  }
  std::unordered_set<val::AsLink> with_triplet;
  for (std::size_t p = 0; p < observed.path_count(); ++p) {
    const auto path = observed.path(p);
    for (std::size_t i = 0; i + 2 < path.size(); ++i) {
      if (path[i + 1] != report.dominant_tier1) continue;
      if (!clique_set.contains(path[i])) continue;
      const val::AsLink candidate{path[i + 1], path[i + 2]};
      if (target_set.contains(candidate)) with_triplet.insert(candidate);
    }
  }

  // ---- 3. Looking-glass investigation of each target ---------------------
  const LookingGlass glass{world, scenario.schemes(),
                           scenario.params().propagation};
  const auto expected_tag =
      val::no_export_to_peers_community(report.dominant_tier1);

  for (const auto& link : by_tier1[report.dominant_tier1]) {
    TargetLink target;
    target.tier1 = report.dominant_tier1;
    target.other = link.a == report.dominant_tier1 ? link.b : link.a;
    target.clique_triplet_found = with_triplet.contains(link);

    const auto route = glass.query(target.tier1, target.other);
    target.action_community_seen =
        route.reachable &&
        std::find(route.communities.begin(), route.communities.end(),
                  expected_tag) != route.communities.end();

    if (const auto edge_id = world.graph.find_edge(link.a, link.b)) {
      const auto& edge = world.graph.edge(*edge_id);
      target.silent_partial_transit =
          edge.rel == topo::RelType::kP2C &&
          edge.scope != topo::ExportScope::kFull && !edge.scope_via_community;
      target.validation_was_wrong = edge.rel == topo::RelType::kP2P;
    }

    report.with_clique_triplet += target.clique_triplet_found ? 1 : 0;
    report.with_action_community += target.action_community_seen ? 1 : 0;
    report.with_silent_partial_transit +=
        target.silent_partial_transit ? 1 : 0;
    report.with_wrong_validation += target.validation_was_wrong ? 1 : 0;
    report.targets.push_back(target);
  }
  std::sort(report.targets.begin(), report.targets.end(),
            [](const TargetLink& a, const TargetLink& b) {
              return a.other < b.other;
            });
  return report;
}

std::string render(const CaseStudyReport& report) {
  std::string out;
  char buffer[160];
  std::snprintf(buffer, sizeof buffer,
                "Wrongly inferred P2P among validated T1-TR links: %zu\n",
                report.wrong_p2p_t1_tr);
  out += buffer;
  if (report.dominant_count == 0) return out;
  std::snprintf(
      buffer, sizeof buffer,
      "Dominant Tier-1: AS%u, involved in %zu of %zu target links (%.0f%%)\n",
      report.dominant_tier1.value(), report.dominant_count,
      report.wrong_p2p_t1_tr,
      100.0 * static_cast<double>(report.dominant_count) /
          static_cast<double>(report.wrong_p2p_t1_tr));
  out += buffer;
  std::snprintf(buffer, sizeof buffer,
                "Targets with a C|T1|X clique triplet in the paths: %zu\n",
                report.with_clique_triplet);
  out += buffer;
  std::snprintf(
      buffer, sizeof buffer,
      "Looking glass: %zu targets tag the no-export-to-peers community "
      "(AS%u:990 analogue)\n",
      report.with_action_community, report.dominant_tier1.value());
  out += buffer;
  std::snprintf(buffer, sizeof buffer,
                "Silent (contract-level) partial transit: %zu\n",
                report.with_silent_partial_transit);
  out += buffer;
  std::snprintf(buffer, sizeof buffer,
                "Inaccurate validation data (link is really P2P): %zu\n",
                report.with_wrong_validation);
  out += buffer;
  return out;
}

}  // namespace asrel::core
