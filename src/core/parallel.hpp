// Shared thread pool with deterministic ordered-merge primitives.
//
// Every parallel stage of the pipeline (route propagation, ProbLink's
// per-round scoring, TopoScope's ensemble members, community extraction,
// BiasAudit tabulation) runs on one process-wide pool through two
// primitives:
//
//   parallel_map_ordered    — fn(i) for i in [0, count), results returned
//                             in index order;
//   parallel_reduce_ordered — fn(i) produces a partial, partials are merged
//                             serially in index order 0, 1, ..., count-1.
//
// Determinism argument: workers claim indices dynamically (so scheduling is
// nondeterministic), but each fn(i) depends only on i and read-only inputs,
// results land in slot i, and every merge happens on the caller thread in
// ascending index order after the batch drains. The output is therefore a
// pure function of (inputs, count) — independent of thread count, core
// count, and scheduling — which is what lets serial and 8-thread pipeline
// runs byte-compare equal (tests/test_parallel.cpp, test_metamorphic.cpp).
//
// Thread-count convention (same as PropagationParams::threads):
//   0 = auto (hardware concurrency), 1 = serial on the caller thread,
//   N = at most N concurrent executors (caller included).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace asrel::core {

class ThreadPool {
 public:
  /// Spawns `workers` persistent worker threads (0 = hardware concurrency).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs fn(0), ..., fn(count-1), using at most `parallelism` concurrent
  /// executors (caller included; 0 = pool size + 1). Blocks until every
  /// index finished. If invocations throw, the exception of the *lowest*
  /// failing index is rethrown (a deterministic choice); once a failure is
  /// recorded, not-yet-claimed indices may be skipped.
  ///
  /// Batches are serialized: concurrent calls from different threads queue
  /// up, and a call made from inside a running batch executes inline and
  /// serially (no deadlock, no oversubscription).
  void run_indexed(std::size_t count, unsigned parallelism,
                   const std::function<void(std::size_t)>& fn);

  /// The process-wide pool, sized to hardware concurrency. Created on first
  /// use; shared by every pipeline stage so one `threads` knob bounds the
  /// whole process.
  static ThreadPool& shared();

  /// Resolves a user-facing thread count: 0 -> hardware concurrency (at
  /// least 1), anything else unchanged.
  [[nodiscard]] static unsigned effective_threads(unsigned requested);

 private:
  struct Batch;

  void worker_loop();
  static void drain_batch(Batch& batch, bool on_worker);

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: a new batch is available
  std::condition_variable done_cv_;  ///< caller: the batch drained
  std::uint64_t generation_ = 0;
  std::shared_ptr<Batch> batch_;
  bool stop_ = false;
  std::mutex submit_mutex_;  ///< one batch at a time
  std::vector<std::thread> workers_;
};

/// fn(i) -> T for i in [0, count); returns {fn(0), ..., fn(count-1)} in
/// index order. `threads` follows the 0/1/N convention above.
template <typename T, typename Fn>
std::vector<T> parallel_map_ordered(ThreadPool& pool, std::size_t count,
                                    unsigned threads, Fn&& fn) {
  std::vector<std::optional<T>> slots(count);
  pool.run_indexed(count, threads,
                   [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<T> out;
  out.reserve(count);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// fn(i) -> Partial; merge(acc, std::move(partial)) is applied serially in
/// index order on the caller thread, so any merge — even an
/// order-sensitive one — yields the same result as a serial loop.
template <typename Acc, typename Fn, typename Merge>
Acc parallel_reduce_ordered(ThreadPool& pool, std::size_t count,
                            unsigned threads, Acc init, Fn&& fn,
                            Merge&& merge) {
  using Partial = decltype(fn(std::size_t{0}));
  auto partials =
      parallel_map_ordered<Partial>(pool, count, threads, std::forward<Fn>(fn));
  Acc acc = std::move(init);
  for (auto& partial : partials) merge(acc, std::move(partial));
  return acc;
}

}  // namespace asrel::core
