#include "core/peerlock.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "topology/random.hpp"

namespace asrel::core {

namespace {

using asn::Asn;

}  // namespace

RelLookup lookup_from_inference(const infer::Inference& inference) {
  return [&inference](const val::AsLink& link) {
    return inference.find(link);
  };
}

RelLookup lookup_from_validation(
    std::span<const val::CleanLabel> validation) {
  auto map = std::make_shared<
      std::unordered_map<val::AsLink, infer::InferredRel>>();
  for (const auto& label : validation) {
    infer::InferredRel rel;
    rel.rel = label.rel;
    rel.provider = label.provider;
    (*map)[label.link] = rel;
  }
  return [map](const val::AsLink& link) -> const infer::InferredRel* {
    const auto it = map->find(link);
    return it == map->end() ? nullptr : &it->second;
  };
}

RelLookup lookup_from_ground_truth(const topo::World& world) {
  // The returned pointer aliases a thread-local scratch slot: it is valid
  // until the next lookup on the same thread, which matches how policies
  // and the leak simulator consume it (read-and-discard).
  return [&world](const val::AsLink& link) -> const infer::InferredRel* {
    static thread_local infer::InferredRel scratch;
    const auto edge_id = world.graph.find_edge(link.a, link.b);
    if (!edge_id) return nullptr;
    const auto& edge = world.graph.edge(*edge_id);
    scratch.rel = edge.rel;
    if (edge.rel == topo::RelType::kP2C) {
      scratch.provider = world.graph.asn_of(edge.u);
    }
    return &scratch;
  };
}

PeerlockPolicy build_peerlock_policy(const topo::World& world,
                                     const RelLookup& rel_of, Asn owner) {
  PeerlockPolicy policy;
  policy.owner = owner;
  const auto node = world.graph.node_of(owner);
  if (!node) return policy;
  for (const auto& neighbor : world.graph.neighbors(*node)) {
    const Asn peer = world.graph.asn_of(neighbor.node);
    const auto* rel = rel_of(val::AsLink{owner, peer});
    if (rel == nullptr) {
      policy.unknown_sessions.push_back(peer);
      continue;
    }
    // A Tier-1-bearing path is legitimate only on a session the operator
    // believes to be a provider (or sibling) session.
    const bool session_is_provider =
        rel->rel == topo::RelType::kP2C && rel->provider == peer;
    const bool session_is_sibling = rel->rel == topo::RelType::kS2S;
    if (!session_is_provider && !session_is_sibling) {
      policy.filtered_sessions.push_back(peer);
    }
  }
  std::sort(policy.filtered_sessions.begin(), policy.filtered_sessions.end());
  std::sort(policy.unknown_sessions.begin(), policy.unknown_sessions.end());
  return policy;
}

std::string render_peerlock_config(const topo::World& world,
                                   const PeerlockPolicy& policy) {
  std::string out;
  out += "! peerlock filters for AS" + std::to_string(policy.owner.value()) +
         " (generated)\n";
  out += "as-path access-list PROTECTED-T1 deny _(";
  for (std::size_t i = 0; i < world.clique.size(); ++i) {
    if (i > 0) out += "|";
    out += std::to_string(world.clique[i].value());
  }
  out += ")_\n";
  for (const Asn session : policy.filtered_sessions) {
    out += "neighbor AS" + std::to_string(session.value()) +
           " filter-list PROTECTED-T1 in\n";
  }
  for (const Asn session : policy.unknown_sessions) {
    out += "! neighbor AS" + std::to_string(session.value()) +
           " UNFILTERED (relationship unknown)\n";
  }
  return out;
}

LeakReport simulate_route_leaks(const Scenario& scenario,
                                const RelLookup& rel_of, int max_leaks,
                                std::uint64_t seed) {
  const auto& world = scenario.world();
  topo::Rng rng{seed};
  LeakReport report;

  // Candidate leakers: ASes with at least two providers (the classic
  // "multihomed customer re-exports provider routes" incident).
  std::vector<Asn> leakers;
  for (const Asn asn : world.graph.nodes()) {
    if (world.graph.providers_of(asn).size() >= 2) leakers.push_back(asn);
  }
  if (leakers.empty()) return report;

  for (int i = 0; i < max_leaks; ++i) {
    const Asn leaker = rng.pick(leakers);
    const auto providers = world.graph.providers_of(leaker);
    const Asn from = providers[rng.below(providers.size())];
    const Asn to = providers[rng.below(providers.size())];
    if (from == to) continue;
    ++report.leaks_simulated;

    // The leaked announcement [leaker, from, ..., T1] arrives at `to` over
    // its session with the leaker. `to`'s Peerlock policy filters the
    // session iff its relationship source labels the leaker as customer or
    // peer.
    const auto* rel = rel_of(val::AsLink{to, leaker});
    if (rel == nullptr) {
      ++report.passed_unknown_session;
      continue;
    }
    const bool session_is_provider =
        rel->rel == topo::RelType::kP2C && rel->provider == leaker;
    const bool session_is_sibling = rel->rel == topo::RelType::kS2S;
    if (session_is_provider || session_is_sibling) {
      ++report.passed_wrong_label;
    } else {
      ++report.blocked;
    }
  }
  return report;
}

}  // namespace asrel::core
