// Scenario: the end-to-end "Obtaining & Cleaning Data" pipeline (§4).
//
// One call wires the whole closed world together:
//   generate topology -> select vantage points -> propagate BGP ->
//   harvest collector paths -> sanitize (observed view) ->
//   compile validation data (communities, optionally RPSL + direct
//   reports) -> clean it (§4.2) -> build the ASN->region mapping from the
//   synthesized delegation files.
// Everything downstream (inference, bias audits, benches) consumes a
// Scenario.
#pragma once

#include <memory>
#include <vector>

#include "bgp/propagation.hpp"
#include "bgp/vantage.hpp"
#include "infer/observed.hpp"
#include "org/as2org.hpp"
#include "rir/region_mapper.hpp"
#include "rpsl/synthesize.hpp"
#include "topology/generator.hpp"
#include "validation/cleaner.hpp"
#include "validation/extract.hpp"
#include "validation/scheme.hpp"
#include "validation/sources.hpp"

namespace asrel::core {

struct ScenarioParams {
  topo::TopologyParams topology;
  bgp::VantageParams vantage;
  bgp::PropagationParams propagation;
  val::ExtractParams extract;
  val::CleaningOptions cleaning;

  /// Recent validation efforts use communities only (§3.2); the secondary
  /// sources can be switched on for ablations.
  bool include_rpsl_source = false;
  bool include_direct_reports = false;
  rpsl::IrrParams irr;
  val::DirectReportParams reports;

  std::uint64_t scheme_seed = 2718;

  /// One knob for the whole pipeline: when nonzero, overrides the
  /// per-stage worker counts (propagation, extraction — and callers pass
  /// it on to inference and audits). 0 leaves each stage's own setting in
  /// force. Every stage is byte-identical for every value.
  unsigned threads = 0;
};

class Scenario {
 public:
  /// Builds the whole pipeline. Deterministic in `params`.
  [[nodiscard]] static std::unique_ptr<Scenario> build(
      const ScenarioParams& params);

  /// Builds a Scenario from an already-materialized world, vantage-point
  /// list, and collected path table, running only the downstream stages
  /// (sanitize -> schemes -> extract -> clean -> regions). The streaming
  /// session uses this both per epoch (with incrementally maintained
  /// paths) and for the from-scratch reference rebuild the byte-equality
  /// invariant is checked against. `params.topology` must describe the
  /// world the parts came from; determinism then matches build().
  [[nodiscard]] static std::unique_ptr<Scenario> from_parts(
      const ScenarioParams& params, topo::World world,
      std::vector<bgp::VantagePoint> vps, bgp::PathTable paths);

  const ScenarioParams& params() const { return params_; }
  const topo::World& world() const { return world_; }
  const std::vector<bgp::VantagePoint>& vantage_points() const {
    return vps_;
  }
  const bgp::PathTable& paths() const { return paths_; }
  const infer::ObservedPaths& observed() const { return observed_; }
  const infer::SanitizeStats& sanitize_stats() const {
    return sanitize_stats_;
  }
  const val::SchemeDirectory& schemes() const { return schemes_; }
  const val::ValidationSet& raw_validation() const { return raw_validation_; }
  const std::vector<val::CleanLabel>& validation() const {
    return validation_;
  }
  const val::CleaningStats& cleaning_stats() const { return cleaning_stats_; }
  const val::ExtractStats& extract_stats() const { return extract_stats_; }
  const org::OrgMap& orgs() const { return orgs_; }
  const rir::RegionMapper& region_mapper() const { return mapper_; }

  /// A fresh propagator over this scenario's world (cheap to construct).
  [[nodiscard]] bgp::Propagator propagator() const {
    return bgp::Propagator{world_, params_.propagation};
  }

 private:
  Scenario() = default;

  /// Shared tail of build()/from_parts(): everything downstream of the
  /// path table (world_, vps_, paths_ must already be set).
  void finish_from_paths();

  ScenarioParams params_;
  topo::World world_;
  std::vector<bgp::VantagePoint> vps_;
  bgp::PathTable paths_;
  infer::ObservedPaths observed_;
  infer::SanitizeStats sanitize_stats_;
  val::SchemeDirectory schemes_;
  val::ValidationSet raw_validation_;
  std::vector<val::CleanLabel> validation_;
  val::CleaningStats cleaning_stats_;
  val::ExtractStats extract_stats_;
  org::OrgMap orgs_;
  rir::RegionMapper mapper_;
};

}  // namespace asrel::core
