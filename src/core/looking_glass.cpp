#include "core/looking_glass.hpp"

#include <algorithm>

namespace asrel::core {

LookingGlass::LookingGlass(const topo::World& world,
                           const val::SchemeDirectory& schemes,
                           bgp::PropagationParams params)
    : world_(&world), schemes_(&schemes), propagator_(world, params) {}

RouteView LookingGlass::query(asn::Asn at, asn::Asn origin) const {
  RouteView view;
  view.at = at;
  view.origin = origin;

  const auto& graph = world_->graph;
  const auto at_node = graph.node_of(at);
  const auto origin_node = graph.node_of(origin);
  if (!at_node || !origin_node) return view;

  const auto rib = propagator_.propagate(origin);
  if (!rib.reachable(*at_node)) return view;
  view.reachable = true;
  view.path = propagator_.path_at(rib, *at_node);

  // Collapsed hop sequence for community reconstruction.
  std::vector<asn::Asn> hops;
  for (const asn::Asn hop : view.path) {
    if (hops.empty() || hops.back() != hop) hops.push_back(hop);
  }

  bool survives = true;  // no stripper between the tagger and `at` yet
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (i > 0 && world_->attrs.at(hops[i - 1]).strips_communities) {
      survives = false;
    }
    const auto edge_id = graph.find_edge(hops[i], hops[i + 1]);
    if (!edge_id) continue;
    const auto& edge = graph.edge(*edge_id);

    // Informational ingress tag attached by hops[i].
    if (survives || i == 0) {
      if (const auto* scheme = schemes_->scheme_of(hops[i])) {
        const auto rel = propagator_.effective_rel(edge, origin);
        val::TagMeaning meaning = val::TagMeaning::kFromCustomer;
        const auto tagger_node = *graph.node_of(hops[i]);
        switch (rel) {
          case topo::RelType::kP2C:
            meaning = edge.u == tagger_node
                          ? val::TagMeaning::kFromCustomer
                          : val::TagMeaning::kFromProvider;
            break;
          case topo::RelType::kP2P:
            meaning = val::TagMeaning::kFromPeer;
            break;
          case topo::RelType::kS2S:
            meaning = val::TagMeaning::kFromCustomer;
            break;
        }
        view.communities.push_back(scheme->tag_for(meaning));
      }
    }

    // The customer-attached action community (the 174:990 analogue) is
    // visible only on the provider's own routers: it is stripped before any
    // redistribution.
    if (i == 0 && edge.scope_via_community &&
        edge.rel == topo::RelType::kP2C &&
        graph.asn_of(edge.u) == at) {
      view.communities.push_back(val::no_export_to_peers_community(at));
    }
  }
  std::sort(view.communities.begin(), view.communities.end());
  view.communities.erase(
      std::unique(view.communities.begin(), view.communities.end()),
      view.communities.end());
  return view;
}

}  // namespace asrel::core
