// The IPv6 routing ecosystem as a derived sub-world, after Giotsas et al.
// 2015 ("IPv6 AS relationships, cliques, and congruence", cited in §3.1):
// only part of the Internet is v6-capable, not every session is dual-stack,
// and the v4/v6 relationship *congruence* of a link is itself a research
// question.
//
// Adoption is derived from deterministic per-AS hashes (not the generator's
// RNG stream), so building a v6 view never perturbs the v4 world.
#pragma once

#include <cstdint>

#include "infer/inference.hpp"
#include "topology/generator.hpp"

namespace asrel::core {

struct V6Params {
  std::uint64_t salt = 0x1965ADD6ull;
  /// Adoption probability per tier (clique leads, stubs trail).
  double adoption_clique = 1.0;
  double adoption_large = 0.9;
  double adoption_mid = 0.7;
  double adoption_small = 0.5;
  double adoption_stub = 0.35;
  /// Regional multiplier bonus for LACNIC/APNIC (v4 scarcity pushed them).
  double scarce_region_bonus = 1.3;
  /// Probability that a link between two capable ASes is dual-stacked.
  double session_dual_stack = 0.85;
};

/// True iff the AS announces IPv6 in this parameterization.
[[nodiscard]] bool v6_capable(const topo::World& world, asn::Asn asn,
                              const V6Params& params);

/// The v6 sub-world: capable ASes, dual-stacked sessions, same ground-truth
/// relationship semantics. Clique/hypergiant/IXP membership and companion
/// data sets are filtered accordingly.
[[nodiscard]] topo::World build_v6_world(const topo::World& world,
                                         const V6Params& params = {});

/// v4/v6 congruence of two inferences over their shared links
/// (Giotsas et al. report high but not perfect congruence).
struct CongruenceReport {
  std::size_t v4_links = 0;
  std::size_t v6_links = 0;
  std::size_t shared_links = 0;
  std::size_t congruent = 0;      ///< same relationship in both stacks
  std::size_t flipped_p2c = 0;    ///< P2C in both but opposite providers
  std::size_t type_mismatch = 0;  ///< P2P in one stack, P2C in the other

  [[nodiscard]] double congruence() const {
    return shared_links == 0
               ? 1.0
               : static_cast<double>(congruent) /
                     static_cast<double>(shared_links);
  }
};

[[nodiscard]] CongruenceReport compare_stacks(const infer::Inference& v4,
                                              const infer::Inference& v6);

}  // namespace asrel::core
