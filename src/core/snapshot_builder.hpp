// Assembles an io::Snapshot from a live Scenario: runs the three inference
// algorithms (ASRank, ProbLink, TopoScope), tags every visible link with
// its §5 regional/topological class via BiasAudit, and flattens the ground
// truth into the serving layer's flat tables. This is the expensive
// batch step; everything in src/serve reads only its output.
#pragma once

#include <functional>

#include "core/scenario.hpp"
#include "io/snapshot.hpp"

namespace asrel::core {

/// Names used for the algorithm sections, in snapshot order.
inline constexpr std::string_view kSnapshotAlgorithms[] = {
    "asrank", "problink", "toposcope"};

/// Which snapshot sections to regenerate in rebuild_snapshot_sections.
/// The streaming publisher marks only the sections an epoch's events can
/// have changed; untouched sections keep their previous bytes.
struct SnapshotSections {
  bool ases = false;        ///< per-AS table (degrees, cone sizes)
  bool edges = false;       ///< ground-truth edge list
  bool validation = false;  ///< cleaned validation labels
  bool algorithms = false;  ///< the three inference labelings
  bool links = false;       ///< visible links + class tags (+ class_names)

  [[nodiscard]] static SnapshotSections all() {
    return {true, true, true, true, true};
  }
  [[nodiscard]] bool any() const {
    return ases || edges || validation || algorithms || links;
  }
};

/// Per-link class-name lookups for the links section. The streaming delta
/// audit passes its own cached classifications here so the publisher never
/// re-tabulates the whole link universe; batch builds leave it null and a
/// fresh BiasAudit is used.
struct SnapshotClassSource {
  std::function<std::string(const val::AsLink&)> regional_class_of;
  std::function<std::string(const val::AsLink&)> topological_class_of;
};

/// Regenerates the selected sections of `snapshot` from `scenario`,
/// leaving the rest untouched. Provenance meta plus the clique/hypergiant
/// lists are always refreshed (they are cheap copies); meta.epoch and
/// meta.built_unix_ms are the caller's to manage. Rebuilding a section
/// yields exactly the bytes a full build_snapshot of the same scenario
/// would produce for it — the byte-equality invariant depends on this.
void rebuild_snapshot_sections(io::Snapshot& snapshot,
                               const Scenario& scenario,
                               const SnapshotSections& sections,
                               const SnapshotClassSource* classes = nullptr);

/// Deterministic in the scenario: the same seed yields byte-identical
/// snapshots across runs.
[[nodiscard]] io::Snapshot build_snapshot(const Scenario& scenario);

}  // namespace asrel::core
