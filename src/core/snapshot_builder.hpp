// Assembles an io::Snapshot from a live Scenario: runs the three inference
// algorithms (ASRank, ProbLink, TopoScope), tags every visible link with
// its §5 regional/topological class via BiasAudit, and flattens the ground
// truth into the serving layer's flat tables. This is the expensive
// batch step; everything in src/serve reads only its output.
#pragma once

#include "core/scenario.hpp"
#include "io/snapshot.hpp"

namespace asrel::core {

/// Names used for the algorithm sections, in snapshot order.
inline constexpr std::string_view kSnapshotAlgorithms[] = {
    "asrank", "problink", "toposcope"};

/// Deterministic in the scenario: the same seed yields byte-identical
/// snapshots across runs.
[[nodiscard]] io::Snapshot build_snapshot(const Scenario& scenario);

}  // namespace asrel::core
